// Tests for the sleep-set partial-order-reduced stateless checker (the
// Inspect-style baseline): agreement with the unreduced explicit checker on
// verdicts, and actual pruning.
#include <gtest/gtest.h>

#include "check/dpor.hpp"
#include "check/explicit_checker.hpp"
#include "check/random_program.hpp"
#include "check/workloads.hpp"
#include "support/env.hpp"
#include "mcapi/executor.hpp"

namespace mcsym::check {
namespace {

namespace wl = workloads;

TEST(DporTest, FindsScatterGatherViolation) {
  const mcapi::Program p = wl::scatter_gather(2);
  DporChecker checker(p);
  const DporResult r = checker.run();
  EXPECT_TRUE(r.violation_found);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(DporTest, CounterexampleReplays) {
  const mcapi::Program p = wl::scatter_gather(2);
  DporChecker checker(p);
  const DporResult r = checker.run();
  ASSERT_TRUE(r.violation_found);
  mcapi::System sys(p);
  mcapi::ReplayScheduler replay(r.counterexample);
  EXPECT_EQ(mcapi::run(sys, replay, nullptr, r.counterexample.size() + 1).outcome,
            mcapi::RunResult::Outcome::kViolation);
}

TEST(DporTest, CleanProgramNoViolation) {
  const mcapi::Program p = wl::pipeline(3, 2);
  DporChecker checker(p);
  const DporResult r = checker.run();
  EXPECT_FALSE(r.violation_found);
  EXPECT_FALSE(r.deadlock_found);
  EXPECT_GT(r.terminal_states, 0u);
}

TEST(DporTest, DetectsDeadlock) {
  mcapi::Program p;
  auto a = p.add_thread("a");
  auto b = p.add_thread("b");
  const auto ea = p.add_endpoint("ea", a.ref());
  const auto eb = p.add_endpoint("eb", b.ref());
  a.recv(ea, "x").send(ea, eb, 1);
  b.recv(eb, "y").send(eb, ea, 2);
  p.finalize();
  DporChecker checker(p);
  EXPECT_TRUE(checker.run().deadlock_found);
}

TEST(DporTest, SleepSetsActuallyPrune) {
  const mcapi::Program p = wl::message_race(3, 1);
  DporChecker reduced(p);
  const DporResult r = reduced.run();
  EXPECT_GT(r.sleep_prunes, 0u);

  // The unreduced stateless tree: ExplicitChecker in matching-collection
  // mode with history memoization off explores the raw interleaving tree.
  // DPOR must take strictly fewer transitions than that.
  mcapi::System sys(p);
  trace::Trace tr(p);
  trace::Recorder rec(tr);
  mcapi::RoundRobinScheduler sched;
  ASSERT_TRUE(mcapi::run(sys, sched, &rec).completed());
  ExplicitOptions opts;
  opts.collect_matchings = true;
  opts.dedup_histories = false;
  ExplicitChecker full(p, opts);
  const ExplicitResult fr = full.enumerate_against(tr);
  EXPECT_LT(r.transitions, fr.transitions);
}

TEST(DporTest, VerdictAgreesWithExplicitOnWorkloads) {
  struct Case {
    mcapi::Program program;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({wl::figure1(), "figure1"});
  cases.push_back({wl::scatter_gather(2), "scatter_gather"});
  cases.push_back({wl::pipeline(3, 2), "pipeline"});
  cases.push_back({wl::ring(3), "ring"});
  cases.push_back({wl::nonblocking_gather(2), "nonblocking_gather"});
  cases.push_back({wl::reversed_waits(), "reversed_waits"});
  for (auto& c : cases) {
    ExplicitChecker explicit_checker(c.program);
    DporChecker dpor(c.program);
    const ExplicitResult er = explicit_checker.run();
    const DporResult dr = dpor.run();
    EXPECT_EQ(er.violation_found, dr.violation_found) << c.name;
    EXPECT_EQ(er.deadlock_found, dr.deadlock_found) << c.name;
  }
}

TEST(DporTest, MccModeStillSound) {
  // Conservative dependence in global-FIFO mode: verdicts must match the
  // hashed explicit checker in the same mode.
  const auto [program, properties] = wl::figure1_with_property();
  (void)properties;
  DporOptions opts;
  opts.mode = mcapi::DeliveryMode::kGlobalFifo;
  DporChecker dpor(program, opts);
  EXPECT_FALSE(dpor.run().violation_found);  // MCC world misses the 4b bug

  DporChecker full(program);
  EXPECT_TRUE(full.run().violation_found);  // delay world finds it
}

class DporRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DporRandomTest, AgreesWithExplicitChecker) {
  const mcapi::Program p = random_program(GetParam());
  ExplicitChecker explicit_checker(p);
  DporChecker dpor(p);
  const ExplicitResult er = explicit_checker.run();
  const DporResult dr = dpor.run();
  EXPECT_EQ(er.violation_found, dr.violation_found) << GetParam();
  EXPECT_EQ(er.deadlock_found, dr.deadlock_found) << GetParam();
}

// Seed count scales with MCSYM_TEST_ITERS (default matches the historical
// range; nightly runs crank the knob for depth).
INSTANTIATE_TEST_SUITE_P(
    Seeds, DporRandomTest,
    ::testing::Range<std::uint64_t>(
        200, 200 + support::env_u64("MCSYM_TEST_ITERS", 20)));

TEST(DporTest, IndependenceRelationBasics) {
  const mcapi::Program p = wl::figure1();
  mcapi::System sys(p);
  DporChecker checker(p);
  mcapi::Action step0{mcapi::Action::Kind::kThreadStep, 0, {}};
  mcapi::Action step2{mcapi::Action::Kind::kThreadStep, 2, {}};
  EXPECT_TRUE(checker.independent(sys, step0, step2));
  EXPECT_FALSE(checker.independent(sys, step0, step0));

  mcapi::Action del_e0;
  del_e0.kind = mcapi::Action::Kind::kDeliver;
  del_e0.channel = mcapi::ChannelId{2, 0};  // e2 -> e0 (owned by t0)
  mcapi::Action del_e1;
  del_e1.kind = mcapi::Action::Kind::kDeliver;
  del_e1.channel = mcapi::ChannelId{2, 1};  // e2 -> e1 (owned by t1)
  EXPECT_TRUE(checker.independent(sys, del_e0, del_e1));   // distinct endpoints
  EXPECT_FALSE(checker.independent(sys, del_e0, step0));   // t0 owns e0
  EXPECT_TRUE(checker.independent(sys, del_e0, step2));    // t2 unrelated
}

}  // namespace
}  // namespace mcsym::check
