// Tests for the partial-order-reduced stateless checkers: the optimal
// source-set/wakeup-tree mode must explore exactly one execution per
// Mazurkiewicz trace (redundant_explorations == 0, closed-form execution
// counts on the workloads), the sleep-set baseline must stay sound, and
// both must agree with the unreduced explicit checker on every verdict.
#include <gtest/gtest.h>

#include "check/dpor.hpp"
#include "check/explicit_checker.hpp"
#include "check/random_program.hpp"
#include "check/workloads.hpp"
#include "support/env.hpp"
#include "mcapi/executor.hpp"

namespace mcsym::check {
namespace {

namespace wl = workloads;

DporResult run_dpor(const mcapi::Program& p, DporMode mode,
                    mcapi::DeliveryMode delivery = mcapi::DeliveryMode::kArbitraryDelay) {
  DporOptions opts;
  opts.algorithm = mode;
  opts.mode = delivery;
  DporChecker checker(p, opts);
  return checker.run();
}

TEST(DporTest, FindsScatterGatherViolation) {
  const mcapi::Program p = wl::scatter_gather(2);
  for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
    const DporResult r = run_dpor(p, mode);
    EXPECT_TRUE(r.violation_found);
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_FALSE(r.counterexample.empty());
  }
}

TEST(DporTest, CounterexampleReplays) {
  const mcapi::Program p = wl::scatter_gather(2);
  for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
    const DporResult r = run_dpor(p, mode);
    ASSERT_TRUE(r.violation_found);
    mcapi::System sys(p);
    mcapi::ReplayScheduler replay(r.counterexample);
    EXPECT_EQ(mcapi::run(sys, replay, nullptr, r.counterexample.size() + 1).outcome,
              mcapi::RunResult::Outcome::kViolation);
  }
}

TEST(DporTest, CleanProgramNoViolation) {
  const mcapi::Program p = wl::pipeline(3, 2);
  for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
    const DporResult r = run_dpor(p, mode);
    EXPECT_FALSE(r.violation_found);
    EXPECT_FALSE(r.deadlock_found);
    EXPECT_GT(r.stats.terminal_states, 0u);
  }
}

TEST(DporTest, DetectsDeadlockAndSchedulesReplay) {
  mcapi::Program p;
  auto a = p.add_thread("a");
  auto b = p.add_thread("b");
  const auto ea = p.add_endpoint("ea", a.ref());
  const auto eb = p.add_endpoint("eb", b.ref());
  a.recv(ea, "x").send(ea, eb, 1);
  b.recv(eb, "y").send(eb, ea, 2);
  p.finalize();
  for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
    const DporResult r = run_dpor(p, mode);
    EXPECT_TRUE(r.deadlock_found);
    // Both threads block on their very first instruction: the initial
    // state itself is the deadlock, so the schedule is empty — and an
    // empty schedule must still replay straight into the deadlock.
    mcapi::System sys(p);
    mcapi::ReplayScheduler replay(r.deadlock_schedule);
    EXPECT_EQ(mcapi::run(sys, replay, nullptr, r.deadlock_schedule.size() + 1).outcome,
              mcapi::RunResult::Outcome::kDeadlock);
  }
}

TEST(DporTest, SleepSetsActuallyPrune) {
  const mcapi::Program p = wl::message_race(3, 1);
  const DporResult r = run_dpor(p, DporMode::kSleepSet);
  EXPECT_GT(r.stats.sleep_prunes, 0u);

  // The unreduced stateless tree: ExplicitChecker in matching-collection
  // mode with history memoization off explores the raw interleaving tree.
  // DPOR must take strictly fewer transitions than that.
  mcapi::System sys(p);
  trace::Trace tr(p);
  trace::Recorder rec(tr);
  mcapi::RoundRobinScheduler sched;
  ASSERT_TRUE(mcapi::run(sys, sched, &rec).completed());
  ExplicitOptions opts;
  opts.collect_matchings = true;
  opts.dedup_histories = false;
  ExplicitChecker full(p, opts);
  const ExplicitResult fr = full.enumerate_against(tr);
  EXPECT_LT(r.stats.transitions, fr.transitions);
}

// The optimality theorem, pinned as closed forms: optimal mode explores
// exactly one maximal execution per Mazurkiewicz trace. On the racing-
// senders family the trace count equals the matching count,
// (senders*msgs)! / (msgs!)^senders; on figure1 it is the paper's two
// pairings (Figures 4a and 4b); fully deterministic workloads have one.
TEST(DporTest, OptimalExploresOneExecutionPerTrace) {
  struct Case {
    mcapi::Program program;
    std::uint64_t traces;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({wl::figure1(), 2, "figure1"});
  cases.push_back({wl::message_race(2, 1), 2, "message_race(2,1)"});
  cases.push_back({wl::message_race(3, 1), 6, "message_race(3,1)"});
  cases.push_back({wl::message_race(2, 2), 6, "message_race(2,2)"});
  cases.push_back({wl::message_race(3, 2), 90, "message_race(3,2)"});
  cases.push_back({wl::pipeline(3, 2), 1, "pipeline(3,2)"});
  cases.push_back({wl::ring(3), 1, "ring(3)"});
  for (auto& c : cases) {
    const DporResult opt = run_dpor(c.program, DporMode::kOptimal);
    EXPECT_EQ(opt.stats.executions, c.traces) << c.name;
    EXPECT_EQ(opt.stats.terminal_states, c.traces) << c.name;
    EXPECT_EQ(opt.stats.redundant_explorations, 0u) << c.name;
    // Sleep sets complete exactly one execution per trace too (their
    // classic guarantee) but burn combinatorially many blocked paths on
    // the way; optimal mode never starts them.
    const DporResult sleep = run_dpor(c.program, DporMode::kSleepSet);
    EXPECT_EQ(sleep.stats.terminal_states, c.traces) << c.name;
    EXPECT_LE(opt.stats.executions, sleep.stats.executions) << c.name;
    EXPECT_LE(opt.stats.transitions, sleep.stats.transitions) << c.name;
  }
}

// n fully independent writers: the naive interleaving tree has (2n)!/2^n
// schedules (n sends and n deliveries, per-thread order fixed) and the
// sleep-set baseline still starts a blocked path for most of them, but
// there is exactly one Mazurkiewicz trace — optimal mode explores it alone.
TEST(DporTest, IndependentWritersExploreSingleTrace) {
  mcapi::Program p;
  std::vector<mcapi::ThreadBuilder> builders;
  std::vector<mcapi::EndpointRef> eps;
  for (int t = 0; t < 3; ++t) {
    builders.push_back(p.add_thread("w" + std::to_string(t)));
    eps.push_back(p.add_endpoint("we" + std::to_string(t), builders.back().ref()));
  }
  for (int t = 0; t < 3; ++t) builders[t].send(eps[t], eps[t], t + 1);
  p.finalize();

  const DporResult opt = run_dpor(p, DporMode::kOptimal);
  EXPECT_EQ(opt.stats.executions, 1u);
  EXPECT_EQ(opt.stats.transitions, 6u);  // 3 sends + 3 deliveries, once
  EXPECT_EQ(opt.stats.races_detected, 0u);
  EXPECT_EQ(opt.stats.redundant_explorations, 0u);

  const DporResult sleep = run_dpor(p, DporMode::kSleepSet);
  EXPECT_EQ(sleep.stats.terminal_states, 1u);
  EXPECT_GT(sleep.stats.executions, 1u);  // blocked paths all the way down
}

// The BM_Dpor_MessageRace/4 acceptance gate (ISSUE 4): optimal mode
// completes message_race(4,2) at exactly the trace count, 8!/(2!)^4 =
// 2520, with zero redundancy — the instance where the sleep-set baseline
// burns ~5*10^4 executions. Optimal-only: the sleep-set run at this size
// belongs in the bench (with its time budget), not in tier-1.
TEST(DporTest, MessageRaceFourExactTraceCount) {
  const DporResult opt = run_dpor(wl::message_race(4, 2), DporMode::kOptimal);
  EXPECT_EQ(opt.stats.executions, 2520u);
  EXPECT_EQ(opt.stats.terminal_states, 2520u);
  EXPECT_EQ(opt.stats.redundant_explorations, 0u);
  EXPECT_FALSE(opt.truncated);
}

// DporOptions::max_seconds is a truncation guard exactly like
// max_transitions: an absurdly small budget must abandon the search with
// truncated set instead of hanging or crashing, in both modes.
TEST(DporTest, TimeBudgetTruncates) {
  const mcapi::Program p = wl::message_race(3, 2);
  for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
    DporOptions opts;
    opts.algorithm = mode;
    opts.max_seconds = 1e-9;
    DporChecker checker(p, opts);
    const DporResult r = checker.run();
    EXPECT_TRUE(r.truncated);
  }
}

// The ISSUE acceptance gate: on the BM_Dpor_MessageRace/3 instance
// (message_race(3,2)) optimal mode explores at least 5x fewer executions
// than the sleep-set baseline.
TEST(DporTest, MessageRaceOptimalBeatsSleepSetsFiveFold) {
  const mcapi::Program p = wl::message_race(3, 2);
  const DporResult opt = run_dpor(p, DporMode::kOptimal);
  const DporResult sleep = run_dpor(p, DporMode::kSleepSet);
  EXPECT_EQ(opt.stats.redundant_explorations, 0u);
  EXPECT_GE(sleep.stats.executions, 5 * opt.stats.executions)
      << "optimal=" << opt.stats.executions
      << " sleepset=" << sleep.stats.executions;
}

TEST(DporTest, WakeupTreeStatsPopulated) {
  const DporResult r = run_dpor(wl::figure1(), DporMode::kOptimal);
  EXPECT_GT(r.stats.races_detected, 0u);
  EXPECT_GT(r.stats.wakeup_nodes, 0u);
  EXPECT_EQ(r.stats.sleep_prunes, 0u);  // sleep-set-mode-only counter
}

TEST(DporTest, VerdictAgreesWithExplicitOnWorkloads) {
  struct Case {
    mcapi::Program program;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({wl::figure1(), "figure1"});
  cases.push_back({wl::scatter_gather(2), "scatter_gather"});
  cases.push_back({wl::pipeline(3, 2), "pipeline"});
  cases.push_back({wl::ring(3), "ring"});
  cases.push_back({wl::nonblocking_gather(2), "nonblocking_gather"});
  cases.push_back({wl::reversed_waits(), "reversed_waits"});
  cases.push_back({wl::polling_race(2), "polling_race"});
  cases.push_back({wl::branchy_race(), "branchy_race"});
  for (auto& c : cases) {
    ExplicitChecker explicit_checker(c.program);
    const ExplicitResult er = explicit_checker.run();
    for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
      const DporResult dr = run_dpor(c.program, mode);
      EXPECT_EQ(er.violation_found, dr.violation_found) << c.name;
      EXPECT_EQ(er.deadlock_found, dr.deadlock_found) << c.name;
    }
    const DporResult opt = run_dpor(c.program, DporMode::kOptimal);
    EXPECT_EQ(opt.stats.redundant_explorations, 0u) << c.name;
  }
}

TEST(DporTest, MccModeStillSound) {
  // Conservative dependence in global-FIFO mode: verdicts must match the
  // hashed explicit checker in the same mode.
  const auto [program, properties] = wl::figure1_with_property();
  (void)properties;
  for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
    const DporResult mcc = run_dpor(program, mode, mcapi::DeliveryMode::kGlobalFifo);
    EXPECT_FALSE(mcc.violation_found);  // MCC world misses the 4b bug

    const DporResult full = run_dpor(program, mode);
    EXPECT_TRUE(full.violation_found);  // delay world finds it
  }
}

class DporRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DporRandomTest, AgreesWithExplicitChecker) {
  const mcapi::Program p = random_program(GetParam());
  ExplicitChecker explicit_checker(p);
  const ExplicitResult er = explicit_checker.run();
  for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
    const DporResult dr = run_dpor(p, mode);
    EXPECT_EQ(er.violation_found, dr.violation_found) << GetParam();
    EXPECT_EQ(er.deadlock_found, dr.deadlock_found) << GetParam();
    if (mode == DporMode::kOptimal) {
      EXPECT_EQ(dr.stats.redundant_explorations, 0u) << GetParam();
    }
  }
}

TEST_P(DporRandomTest, AgreesOnDeadlockCapablePrograms) {
  RandomProgramOptions popts;
  popts.allow_deadlocks = true;
  popts.max_sends_per_thread = 2;
  const mcapi::Program p = random_program(GetParam(), popts);
  ExplicitChecker explicit_checker(p);
  const ExplicitResult er = explicit_checker.run();
  for (const auto mode : {DporMode::kOptimal, DporMode::kSleepSet}) {
    const DporResult dr = run_dpor(p, mode);
    EXPECT_EQ(er.violation_found, dr.violation_found) << GetParam();
    EXPECT_EQ(er.deadlock_found, dr.deadlock_found) << GetParam();
    if (mode == DporMode::kOptimal) {
      EXPECT_EQ(dr.stats.redundant_explorations, 0u) << GetParam();
    }
  }
}

// Seed count scales with MCSYM_TEST_ITERS. The default is leaner than the
// historical 20 now that the nightly deep tier cranks the knob; each seed
// also runs twice (both DPOR modes).
INSTANTIATE_TEST_SUITE_P(
    Seeds, DporRandomTest,
    ::testing::Range<std::uint64_t>(
        200, 200 + support::env_u64("MCSYM_TEST_ITERS", 12)));

TEST(DporTest, IndependenceRelationBasics) {
  const mcapi::Program p = wl::figure1();
  mcapi::System sys(p);
  DporChecker checker(p);
  mcapi::Action step0{mcapi::Action::Kind::kThreadStep, 0, {}};
  mcapi::Action step2{mcapi::Action::Kind::kThreadStep, 2, {}};
  EXPECT_TRUE(checker.independent(sys, step0, step2));
  EXPECT_FALSE(checker.independent(sys, step0, step0));

  mcapi::Action del_e0;
  del_e0.kind = mcapi::Action::Kind::kDeliver;
  del_e0.channel = mcapi::ChannelId{2, 0};  // e2 -> e0 (owned by t0)
  mcapi::Action del_e1;
  del_e1.kind = mcapi::Action::Kind::kDeliver;
  del_e1.channel = mcapi::ChannelId{2, 1};  // e2 -> e1 (owned by t1)
  mcapi::Action del_x;
  del_x.kind = mcapi::Action::Kind::kDeliver;
  del_x.channel = mcapi::ChannelId{1, 0};  // e1 -> e0: same destination queue
  EXPECT_TRUE(checker.independent(sys, del_e0, del_e1));   // distinct endpoints
  EXPECT_FALSE(checker.independent(sys, del_e0, del_x));   // race for e0 arrival
  EXPECT_TRUE(checker.independent(sys, del_e0, step2));    // t2 unrelated
  // Refinement over the old owner-based relation: with nothing in transit
  // and t0's receive not holding a queued message, the delivery and the
  // receive share no message identity and commute; the causal pinning of a
  // receive behind the delivery it pops is per-message (see
  // MessageChainDependence), not per-endpoint-owner.
  EXPECT_TRUE(checker.independent(sys, del_e0, step0));
}

// The dependence relation's message-chain precision: a send and the
// delivery of a *different* in-transit message on the same channel commute
// (append-back vs pop-front), while the delivery of the send's own message
// is causally pinned behind it.
TEST(DporTest, MessageChainDependence) {
  mcapi::Program p;
  auto a = p.add_thread("a");
  auto b = p.add_thread("b");
  const auto ea = p.add_endpoint("ea", a.ref());
  const auto eb = p.add_endpoint("eb", b.ref());
  a.send(ea, eb, 1).send(ea, eb, 2);
  b.recv(eb, "x").recv(eb, "y");
  p.finalize();

  mcapi::System sys(p);
  mcapi::Action step_a{mcapi::Action::Kind::kThreadStep, 0, {}};
  mcapi::Action del;
  del.kind = mcapi::Action::Kind::kDeliver;
  del.channel = mcapi::ChannelId{ea, eb};

  // Nothing in transit: the delivery footprint names no message, the
  // pending send cannot feed it (their identities differ), so they commute.
  DporChecker checker(p);
  EXPECT_TRUE(checker.independent(sys, step_a, del));

  sys.apply(step_a);  // send #0 now in transit
  // The delivery would move exactly the message the *previous* send
  // produced; the next send (op 1) still commutes with it.
  EXPECT_TRUE(checker.independent(sys, step_a, del));
  const auto fp_del = sys.footprint(del);
  ASSERT_TRUE(fp_del.has_message);
  EXPECT_EQ(fp_del.message_thread, 0u);
  EXPECT_EQ(fp_del.message_op, 0u);
  const auto fp_send = sys.footprint(step_a);
  EXPECT_EQ(fp_send.op_index, 1u);
  // Once message #0 is delivered, b's blocking recv will pop it; the
  // delivery of message #1 (a different identity) commutes with that recv.
  sys.apply(del);
  sys.apply(step_a);  // send #1 in transit
  mcapi::Action step_b{mcapi::Action::Kind::kThreadStep, 1, {}};
  const auto fp_recv = sys.footprint(step_b);
  ASSERT_TRUE(fp_recv.has_message);
  EXPECT_EQ(fp_recv.message_op, 0u);  // pops the delivered #0 ...
  EXPECT_TRUE(checker.independent(sys, step_b, del));  // ... not in-transit #1
}

}  // namespace
}  // namespace mcsym::check
