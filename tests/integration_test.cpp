// End-to-end integration: record -> serialize -> reload -> analyze, plus
// the full workflow on each shipped workload.
#include <gtest/gtest.h>

#include "check/baselines.hpp"
#include "check/symbolic_checker.hpp"
#include "check/verifier.hpp"
#include "check/workloads.hpp"
#include "mcapi/executor.hpp"
#include "smt/smtlib.hpp"
#include "smt/solver.hpp"
#include "trace/trace.hpp"

namespace mcsym {
namespace {

namespace wl = check::workloads;

trace::Trace record(const mcapi::Program& p, std::uint64_t seed = 1,
                    bool require_complete = true) {
  mcapi::System sys(p);
  trace::Trace tr(p);
  trace::Recorder rec(tr);
  mcapi::RandomScheduler sched(seed);
  const auto r = mcapi::run(sys, sched, &rec);
  if (require_complete) {
    EXPECT_TRUE(r.completed());
  }
  return tr;
}

TEST(IntegrationTest, SerializedTraceAnalyzesIdentically) {
  const auto [program, properties] = wl::figure1_with_property();
  const trace::Trace original = record(program, 42, false);
  const trace::Trace reloaded = trace::Trace::from_text(program, original.to_text());

  check::SymbolicChecker a(original);
  check::SymbolicChecker b(reloaded);
  EXPECT_EQ(a.check(properties).result, b.check(properties).result);
  EXPECT_EQ(a.enumerate_matchings().matchings, b.enumerate_matchings().matchings);
}

TEST(IntegrationTest, EveryWorkloadRunsAndEncodes) {
  struct Case {
    const char* name;
    mcapi::Program program;
    smt::SolveResult expected;  // verdict of check() with in-program asserts
  };
  std::vector<Case> cases;
  // figure1 and message_race state no properties: with nothing to negate the
  // problem is just "a consistent execution exists", which is SAT.
  cases.push_back({"figure1", wl::figure1(), smt::SolveResult::kSat});
  cases.push_back({"message_race", wl::message_race(2, 2), smt::SolveResult::kSat});
  // pipeline/ring assert deterministic facts: negation UNSAT (verified).
  cases.push_back({"pipeline", wl::pipeline(3, 2), smt::SolveResult::kUnsat});
  cases.push_back({"ring", wl::ring(3), smt::SolveResult::kUnsat});
  // racy assertions: violation reachable, SAT.
  cases.push_back({"scatter_gather", wl::scatter_gather(2), smt::SolveResult::kSat});
  cases.push_back(
      {"nonblocking_gather", wl::nonblocking_gather(2), smt::SolveResult::kSat});

  for (auto& c : cases) {
    // Find a completing seed (racy asserts can fire at runtime).
    bool done = false;
    for (std::uint64_t seed = 0; seed < 64 && !done; ++seed) {
      mcapi::System sys(c.program);
      trace::Trace tr(c.program);
      trace::Recorder rec(tr);
      mcapi::RandomScheduler sched(seed);
      if (!mcapi::run(sys, sched, &rec).completed()) continue;
      ASSERT_FALSE(tr.validate().has_value()) << c.name;
      check::SymbolicChecker checker(tr);
      EXPECT_EQ(checker.check().result, c.expected) << c.name;
      done = true;
    }
    EXPECT_TRUE(done) << "no completing run found for " << c.name;
  }
}

TEST(IntegrationTest, VerifierPortfolioAgreesOnEveryWorkload) {
  // The facade's end-to-end story on the shipped workloads: all four
  // engines behind one call, verdicts normalized, cross-checks silent.
  struct Case {
    const char* name;
    mcapi::Program program;
    check::Verdict expected;
  };
  std::vector<Case> cases;
  cases.push_back({"figure1", wl::figure1(), check::Verdict::kSafe});
  cases.push_back(
      {"message_race", wl::message_race(2, 2), check::Verdict::kSafe});
  cases.push_back({"pipeline", wl::pipeline(3, 2), check::Verdict::kSafe});
  cases.push_back(
      {"scatter_gather", wl::scatter_gather(2), check::Verdict::kViolation});
  cases.push_back({"nonblocking_gather", wl::nonblocking_gather(2),
                   check::Verdict::kViolation});

  check::Verifier verifier;
  for (auto& c : cases) {
    check::VerifyRequest req;
    req.engine = check::Engine::kPortfolio;
    req.traces = 3;
    const check::VerifyReport report = verifier.verify(c.program, req);
    EXPECT_EQ(report.verdict, c.expected) << c.name;
    EXPECT_TRUE(report.agreed())
        << c.name << ": " << report.disagreements.front();
    if (c.expected == check::Verdict::kViolation) {
      EXPECT_FALSE(report.witness_schedule.empty()) << c.name;
    }
  }
}

TEST(IntegrationTest, StatefulPortfolioClassifiesTheLoopingWorkloads) {
  // The looping workloads through the same portfolio path: the finite loops
  // get a definitive safe verdict (stateful matching is what lets the
  // explicit/DPOR engines terminate on them with a classification), and the
  // livelock gets the non-termination verdict with a lasso witness.
  struct Case {
    const char* name;
    mcapi::Program program;
    check::Verdict expected;
  };
  std::vector<Case> cases;
  cases.push_back({"select_server_loop", wl::select_server_loop(2),
                   check::Verdict::kSafe});
  cases.push_back(
      {"request_stream", wl::request_stream(3), check::Verdict::kSafe});
  cases.push_back(
      {"livelock_pair", wl::livelock_pair(), check::Verdict::kNonTermination});

  check::Verifier verifier;
  for (auto& c : cases) {
    check::VerifyRequest req;
    req.engine = check::Engine::kPortfolio;
    req.stateful = true;
    req.traces = 3;
    const check::VerifyReport report = verifier.verify(c.program, req);
    EXPECT_EQ(report.verdict, c.expected) << c.name;
    EXPECT_TRUE(report.agreed())
        << c.name << ": " << report.disagreements.front();
    if (c.expected == check::Verdict::kNonTermination) {
      EXPECT_FALSE(report.lasso_cycle.empty()) << c.name;
    }
  }
}

TEST(IntegrationTest, SmtLibExportParsesStructurally) {
  const mcapi::Program p = wl::figure1();
  const trace::Trace tr = record(p);
  check::SymbolicChecker checker(tr);
  smt::Solver solver;
  encode::Encoder encoder(solver, tr, checker.match_set());
  (void)encoder.encode();
  const std::string text = smt::to_smtlib(solver.terms(), solver.assertions());
  // Balanced parentheses and one check-sat.
  int depth = 0;
  for (const char ch : text) {
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(IntegrationTest, WitnessScheduleRespectsProgramOrder) {
  const auto [program, properties] = wl::figure1_with_property();
  const trace::Trace tr = record(program, 42, false);
  check::SymbolicChecker checker(tr);
  const auto verdict = checker.check(properties);
  ASSERT_TRUE(verdict.witness.has_value());
  // Within each thread, the witness linearization must preserve op order.
  std::vector<std::int64_t> last_op(tr.num_threads(), -1);
  for (const trace::EventIndex idx : verdict.witness->linearization) {
    const auto& ev = tr.event(idx).ev;
    EXPECT_GT(static_cast<std::int64_t>(ev.op_index), last_op[ev.thread]);
    last_op[ev.thread] = ev.op_index;
  }
  // And every matched send must appear before its receive's completion.
  for (const auto& [recv, send] : verdict.witness->matching) {
    const trace::EventIndex completion = tr.completion_of(recv);
    std::size_t send_pos = 0;
    std::size_t completion_pos = 0;
    for (std::size_t i = 0; i < verdict.witness->linearization.size(); ++i) {
      if (verdict.witness->linearization[i] == send) send_pos = i;
      if (verdict.witness->linearization[i] == completion) completion_pos = i;
    }
    EXPECT_LT(send_pos, completion_pos);
  }
}

TEST(IntegrationTest, DelayBiasedTracesStillAnalyzeCorrectly) {
  // Very laggy network during recording: in-transit pile-ups. The analysis
  // result must be independent of which concrete trace we happened to see.
  const mcapi::Program p = wl::figure1();
  std::set<std::size_t> counts;
  for (const double bias : {0.05, 1.0, 20.0}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      mcapi::System sys(p);
      trace::Trace tr(p);
      trace::Recorder rec(tr);
      mcapi::RandomScheduler sched(seed, bias);
      ASSERT_TRUE(mcapi::run(sys, sched, &rec).completed());
      check::SymbolicChecker checker(tr);
      counts.insert(checker.enumerate_matchings().matchings.size());
    }
  }
  EXPECT_EQ(counts, (std::set<std::size_t>{2}));
}

TEST(IntegrationTest, BaselineAgreesWhereDelaysDontMatter) {
  // Single-sender FIFO workload: baselines and the paper's engine coincide.
  const mcapi::Program p = wl::pipeline(3, 3);
  const trace::Trace tr = record(p);
  check::SymbolicChecker paper(tr);
  check::DelayIgnorantChecker baseline(tr);
  EXPECT_EQ(paper.check().result, smt::SolveResult::kUnsat);
  EXPECT_EQ(baseline.check().result, smt::SolveResult::kUnsat);
  EXPECT_EQ(paper.enumerate_matchings().matchings,
            baseline.enumerate_matchings().matchings);
}

}  // namespace
}  // namespace mcsym
