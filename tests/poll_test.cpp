// mcapi_test (completion poll) semantics, end to end: runtime behavior,
// trace capture/serialization, symbolic encoding of pinned poll outcomes,
// cross-validation against the reference enumerations, witness replay, and
// the C API facade.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/explicit_checker.hpp"
#include "check/random_program.hpp"
#include "check/symbolic_checker.hpp"
#include "check/witness_replay.hpp"
#include "check/workloads.hpp"
#include "encode/encoder.hpp"
#include "match/generators.hpp"
#include "mcapi/capi.hpp"
#include "mcapi/executor.hpp"
#include "smt/solver.hpp"
#include "text/program_text.hpp"
#include "trace/trace.hpp"

namespace mcsym::check {
namespace {

namespace wl = workloads;
using mcapi::Action;
using mcapi::ExecEvent;
using mcapi::System;

trace::Trace record(const mcapi::Program& p, std::uint64_t seed) {
  System sys(p);
  trace::Trace tr(p);
  trace::Recorder rec(tr);
  mcapi::RandomScheduler sched(seed);
  const auto r = mcapi::run(sys, sched, &rec);
  EXPECT_NE(r.outcome, mcapi::RunResult::Outcome::kDeadlock);
  return tr;
}

/// The single kTest event's outcome in a trace; -1 if absent.
int poll_outcome(const trace::Trace& tr) {
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto& e = tr.event(static_cast<trace::EventIndex>(i)).ev;
    if (e.kind == ExecEvent::Kind::kTest) return e.outcome ? 1 : 0;
  }
  return -1;
}

// --- Runtime semantics -----------------------------------------------------------

TEST(PollRuntimeTest, OutcomeTracksDeliveryExactly) {
  // rx: recv_i; test -> flag; wait.  tx: send.
  mcapi::Program p;
  auto rx = p.add_thread("rx");
  auto tx = p.add_thread("tx");
  const auto er = p.add_endpoint("er", rx.ref());
  const auto et = p.add_endpoint("et", tx.ref());
  rx.recv_nb(er, "x", 0).test_poll(0, "flag").wait(0);
  tx.send(et, er, 7);
  p.finalize();

  const Action step_rx{Action::Kind::kThreadStep, 0, {}};
  const Action step_tx{Action::Kind::kThreadStep, 1, {}};
  const Action deliver{Action::Kind::kDeliver, 0, {et, er}};

  {
    // Poll before the message even exists: 0.
    System sys(p);
    sys.apply(step_rx);  // recv_i
    sys.apply(step_rx);  // test
    EXPECT_EQ(sys.local(0, 1), 0) << "flag is slot 1 (x is slot 0)";
  }
  {
    // Poll after send but before delivery: still 0.
    System sys(p);
    sys.apply(step_rx);
    sys.apply(step_tx);
    sys.apply(step_rx);
    EXPECT_EQ(sys.local(0, 1), 0);
  }
  {
    // Poll after delivery: 1, and the wait is immediately enabled.
    System sys(p);
    sys.apply(step_rx);
    sys.apply(step_tx);
    sys.apply(deliver);
    sys.apply(step_rx);
    EXPECT_EQ(sys.local(0, 1), 1);
    std::vector<Action> enabled;
    sys.enabled(enabled);
    EXPECT_TRUE(std::find(enabled.begin(), enabled.end(), step_rx) != enabled.end());
    sys.apply(step_rx);  // wait
    EXPECT_EQ(sys.local(0, 0), 7);
  }
}

TEST(PollRuntimeTest, PollNeverBlocks) {
  const mcapi::Program p = wl::polling_race(2);
  System sys(p);
  // rx can run recv_i and the poll immediately, before any sender moves.
  const Action step_rx{Action::Kind::kThreadStep, 0, {}};
  std::vector<Action> enabled;
  sys.apply(step_rx);  // recv_i
  sys.enabled(enabled);
  EXPECT_TRUE(std::find(enabled.begin(), enabled.end(), step_rx) != enabled.end())
      << "test must be enabled while the request is pending";
}

TEST(PollRuntimeTest, BothOutcomesReachable) {
  const mcapi::Program p = wl::polling_race(2);
  bool saw[2] = {false, false};
  for (std::uint64_t seed = 0; seed < 64 && (!saw[0] || !saw[1]); ++seed) {
    const trace::Trace tr = record(p, seed);
    const int out = poll_outcome(tr);
    ASSERT_NE(out, -1);
    saw[out] = true;
  }
  EXPECT_TRUE(saw[0]) << "no schedule produced a pending poll";
  EXPECT_TRUE(saw[1]) << "no schedule produced a completed poll";
}

// --- Trace capture & text roundtrip ----------------------------------------------

TEST(PollTraceTest, TestEventsLinkToTheirIssue) {
  const mcapi::Program p = wl::poll_window();
  const trace::Trace tr = record(p, 5);
  EXPECT_EQ(tr.validate(), std::nullopt);
  bool found = false;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto& te = tr.event(static_cast<trace::EventIndex>(i));
    if (te.ev.kind != ExecEvent::Kind::kTest) continue;
    found = true;
    ASSERT_NE(te.issue_event, trace::kNoEvent);
    EXPECT_EQ(tr.event(te.issue_event).ev.kind, ExecEvent::Kind::kRecvIssue);
    EXPECT_EQ(tr.event(te.issue_event).ev.req, te.ev.req);
  }
  EXPECT_TRUE(found);
}

TEST(PollTraceTest, SerializationRoundtrips) {
  const mcapi::Program p = wl::poll_window();
  const trace::Trace tr = record(p, 5);
  const std::string text = tr.to_text();
  EXPECT_NE(text.find("test "), std::string::npos);
  const trace::Trace back = trace::Trace::from_text(p, text);
  EXPECT_EQ(back.to_text(), text);
  EXPECT_EQ(back.validate(), std::nullopt);
}

TEST(PollTextTest, ProgramTextRoundtrips) {
  const mcapi::Program p = wl::poll_window();
  const std::string text1 = text::program_to_text(p, {}, "poll_window");
  EXPECT_NE(text1.find("test 0 -> flag"), std::string::npos);
  const auto out = text::parse_program(text1);
  ASSERT_TRUE(out.ok()) << out.error_text();
  EXPECT_EQ(text::program_to_text(out.parsed->program, {}, "poll_window"), text1);

  const trace::Trace a = record(p, 9);
  const trace::Trace b = record(out.parsed->program, 9);
  EXPECT_EQ(a.to_text(), b.to_text());
}

TEST(PollTextTest, MalformedTestInstruction) {
  EXPECT_FALSE(text::parse_program("thread t\n  test x -> y\n").ok());
  EXPECT_FALSE(text::parse_program("thread t\n  test 0 y\n").ok());
}

// --- Symbolic encoding ------------------------------------------------------------

/// Records traces until one of each poll polarity is found.
struct Polarized {
  std::optional<trace::Trace> done;     // poll saw completion
  std::optional<trace::Trace> pending;  // poll saw "still pending"
};

Polarized polarize(const mcapi::Program& p) {
  Polarized out;
  for (std::uint64_t seed = 0; seed < 128; ++seed) {
    if (out.done && out.pending) break;
    trace::Trace tr = record(p, seed);
    const int o = poll_outcome(tr);
    if (o == 1 && !out.done) out.done.emplace(std::move(tr));
    if (o == 0 && !out.pending) out.pending.emplace(std::move(tr));
  }
  return out;
}

TEST(PollEncodingTest, PollWindowMatchingCountsDependOnOutcome) {
  const mcapi::Program p = wl::poll_window();
  const Polarized traces = polarize(p);
  ASSERT_TRUE(traces.done.has_value());
  ASSERT_TRUE(traces.pending.has_value());

  // Completed poll: the late send is excluded; exactly 1 matching.
  SymbolicChecker done_checker(*traces.done);
  EXPECT_EQ(done_checker.enumerate_matchings().matchings.size(), 1u);

  // Pending poll: both sends remain possible; exactly 2 matchings.
  SymbolicChecker pending_checker(*traces.pending);
  EXPECT_EQ(pending_checker.enumerate_matchings().matchings.size(), 2u);
}

TEST(PollEncodingTest, TestConstraintsAreCounted) {
  const mcapi::Program p = wl::poll_window();
  const trace::Trace tr = record(p, 5);
  const match::MatchSet set = match::generate_overapprox(tr);
  smt::Solver solver;
  encode::EncodeOptions opts;
  opts.property_mode = encode::PropertyMode::kIgnore;
  encode::Encoder encoder(solver, tr, set, opts);
  const encode::Encoding enc = encoder.encode();
  EXPECT_EQ(enc.stats.test_constraints, 1u);
  EXPECT_EQ(solver.check(), smt::SolveResult::kSat)
      << "the recorded execution itself must satisfy the encoding";
}

TEST(PollEncodingTest, PaperLiteralAblationStaysSoundWithPolls) {
  // Even with order_endpoint_completions off (the 2-page paper's literal
  // encoding), tested anchors get a real bind variable, so poll outcomes
  // stay exact on this single-request workload.
  const mcapi::Program p = wl::poll_window();
  const Polarized traces = polarize(p);
  ASSERT_TRUE(traces.done.has_value());

  SymbolicOptions opts;
  opts.encode.order_endpoint_completions = false;
  SymbolicChecker checker(*traces.done, opts);
  EXPECT_EQ(checker.enumerate_matchings().matchings.size(), 1u);
}

// --- Cross-validation --------------------------------------------------------------

void expect_all_engines_agree(const trace::Trace& tr, std::uint64_t tag) {
  const auto truth = match::enumerate_feasible(tr);
  if (truth.truncated) GTEST_SKIP() << "reference truncated for " << tag;

  SymbolicChecker checker(tr);
  const auto sym = checker.enumerate_matchings();
  EXPECT_EQ(sym.matchings, truth.matchings) << "tag=" << tag;

  ExplicitOptions eopts;
  eopts.collect_matchings = true;
  ExplicitChecker explicit_checker(tr.program(), eopts);
  const auto exp = explicit_checker.enumerate_against(tr);
  if (exp.truncated) GTEST_SKIP() << "explicit reference truncated for " << tag;
  EXPECT_EQ(sym.matchings, exp.matchings) << "tag=" << tag;
}

TEST(PollCrossValidationTest, PollWindowAgreesAcrossEngines) {
  const mcapi::Program p = wl::poll_window();
  const Polarized traces = polarize(p);
  ASSERT_TRUE(traces.done.has_value());
  ASSERT_TRUE(traces.pending.has_value());
  expect_all_engines_agree(*traces.done, 1);
  expect_all_engines_agree(*traces.pending, 0);
}

TEST(PollCrossValidationTest, PollingRaceAgreesAcrossEngines) {
  for (const std::uint32_t senders : {2u, 3u}) {
    const mcapi::Program p = wl::polling_race(senders);
    for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
      expect_all_engines_agree(record(p, seed), senders * 1000 + seed);
    }
  }
}

class PollRandomCrossValidationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PollRandomCrossValidationTest, SymbolicEqualsReferences) {
  const std::uint64_t seed = GetParam();
  RandomProgramOptions opts;
  opts.allow_nonblocking = true;
  opts.allow_test_poll = true;
  opts.max_sends_per_thread = 2;
  const mcapi::Program p = random_program(seed, opts);
  expect_all_engines_agree(record(p, seed ^ 0xbeef), seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PollRandomCrossValidationTest,
                         ::testing::Range<std::uint64_t>(400, 420));

// --- Witness replay -----------------------------------------------------------------

TEST(PollReplayTest, EveryEnumeratedModelReplays) {
  const mcapi::Program p = wl::poll_window();
  const Polarized traces = polarize(p);
  ASSERT_TRUE(traces.done.has_value());
  ASSERT_TRUE(traces.pending.has_value());

  for (const trace::Trace* tr : {&*traces.done, &*traces.pending}) {
    const match::MatchSet set = match::generate_overapprox(*tr);
    smt::Solver solver;
    encode::EncodeOptions opts;
    opts.property_mode = encode::PropertyMode::kIgnore;
    encode::Encoder encoder(solver, *tr, set, opts);
    const encode::Encoding enc = encoder.encode();
    const auto projection = enc.id_projection();

    std::size_t models = 0;
    while (solver.check() == smt::SolveResult::kSat) {
      const encode::Witness w = encode::decode_witness(solver, enc, *tr);
      const auto replayed = schedule_from_witness(p, *tr, w);
      ASSERT_TRUE(replayed.has_value())
          << "unsound model (poll outcome " << poll_outcome(*tr) << "):\n"
          << w.to_string(*tr);
      ++models;
      solver.block_current_ints(projection);
      ASSERT_LT(models, 50u);
    }
    EXPECT_GT(models, 0u);
  }
}

// --- C API facade -------------------------------------------------------------------

TEST(PollCapiTest, TestCallRecordsAndRuns) {
  using namespace mcapi::capi;
  VirtualTarget target;
  mcapi_status_t status;

  NodeSession* rx = target.initialize(0, 0, &status);
  ASSERT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);
  NodeSession* tx = target.initialize(0, 1, &status);
  ASSERT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);

  const mcapi_endpoint_t in = rx->endpoint_create(0, &status);
  ASSERT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);
  const mcapi_endpoint_t out = tx->endpoint_create(0, &status);
  ASSERT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);
  const mcapi_endpoint_t to = tx->endpoint_get(0, 0, 0, &status);
  ASSERT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);

  mcapi_request_t req;
  rx->msg_recv_i(in, "buf", &req, &status);
  ASSERT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);
  rx->test(&req, "done", &status);
  EXPECT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);
  rx->wait(&req, &status);
  EXPECT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);
  tx->msg_send(out, to, 42, 0, &status);
  EXPECT_EQ(status, mcapi_status_t::MCAPI_SUCCESS);

  // The consumed request is rejected by a late poll.
  rx->test(&req, "late", &status);
  EXPECT_EQ(status, mcapi_status_t::MCAPI_ERR_REQUEST_INVALID);

  const mcapi::Program p = target.finalize();
  mcapi::System sys(p);
  mcapi::RoundRobinScheduler sched;
  EXPECT_TRUE(mcapi::run(sys, sched, nullptr).completed());
}

TEST(PollCapiTest, TestOnUnissuedRequestIsRejected) {
  using namespace mcapi::capi;
  VirtualTarget target;
  mcapi_status_t status;
  NodeSession* rx = target.initialize(0, 0, &status);
  mcapi_request_t bogus;
  rx->test(&bogus, "flag", &status);
  EXPECT_EQ(status, mcapi_status_t::MCAPI_ERR_REQUEST_INVALID);
  rx->test(nullptr, "flag", &status);
  EXPECT_EQ(status, mcapi_status_t::MCAPI_ERR_REQUEST_INVALID);
}

}  // namespace
}  // namespace mcsym::check
