// Undo-log equivalence fuzz: the checkpoint/undo execution core must be
// observationally indistinguishable from copy-the-world state management.
// Hundreds of seeded random programs are driven through random action
// prefixes on a journaling System; copy-constructed snapshots are taken at
// random depths, and random rollbacks must land on a state identical to
// the snapshot — enabled set, endpoint/transit queues (via fingerprints),
// match and branch logs, halt/deadlock/violation verdicts — after which
// the walk resumes from the rolled-back state.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "check/random_program.hpp"
#include "mcapi/system.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace mcsym::mcapi {
namespace {

std::vector<Action> enabled_of(const System& s) {
  std::vector<Action> out;
  s.enabled(out);
  return out;
}

/// The observational-equality contract of the satellite: everything a
/// checker can ask a System is compared. The two fingerprints cover the
/// full semantic state (queues, locals, requests, transit layout) and the
/// accumulated history; the rest pins the user-facing surface directly.
void expect_observationally_equal(const System& got, const System& want,
                                  std::uint64_t seed, std::size_t depth) {
  ASSERT_EQ(got.fingerprint(), want.fingerprint())
      << "seed=" << seed << " depth=" << depth;
  ASSERT_EQ(got.history_fingerprint(), want.history_fingerprint())
      << "seed=" << seed << " depth=" << depth;
  ASSERT_EQ(enabled_of(got), enabled_of(want)) << "seed=" << seed;
  ASSERT_EQ(got.matches(), want.matches()) << "seed=" << seed;
  ASSERT_EQ(got.branches(), want.branches()) << "seed=" << seed;
  ASSERT_EQ(got.all_halted(), want.all_halted()) << "seed=" << seed;
  ASSERT_EQ(got.deadlocked(), want.deadlocked()) << "seed=" << seed;
  ASSERT_EQ(got.has_violation(), want.has_violation()) << "seed=" << seed;
}

check::RandomProgramOptions shape_for(support::Rng& rng) {
  check::RandomProgramOptions popts;
  popts.threads = 2 + static_cast<std::uint32_t>(rng.below(3));
  popts.max_sends_per_thread = 1 + static_cast<std::uint32_t>(rng.below(3));
  popts.allow_nonblocking = rng.chance(1, 2);
  popts.allow_test_poll = popts.allow_nonblocking && rng.chance(1, 2);
  popts.allow_wait_any = popts.allow_nonblocking && rng.chance(1, 2);
  popts.add_asserts = rng.chance(1, 2);
  popts.allow_deadlocks = rng.chance(1, 2);
  return popts;
}

TEST(UndoLog, RandomRollbacksMatchCopySnapshots) {
  // ~500 executions at the CI default; the nightly knob scales it up.
  const std::uint64_t executions = support::env_u64("MCSYM_TEST_ITERS", 500);
  for (std::uint64_t i = 0; i < executions; ++i) {
    const std::uint64_t seed = 0x0d01ULL + i * 0x9e3779b97f4a7c15ULL;
    support::Rng rng(seed);
    const Program program = check::random_program(seed, shape_for(rng));

    System live(program);
    live.enable_undo_log();
    // (watermark, copy-constructed baseline) pairs at random depths; the
    // copies are the ground truth the undo path must reproduce.
    std::vector<std::pair<System::Checkpoint, System>> snapshots;
    snapshots.emplace_back(live.checkpoint(), live);

    std::vector<Action> enabled;
    std::size_t depth = 0;
    for (int step = 0; step < 160; ++step) {
      live.enabled(enabled);
      if (enabled.empty()) {
        if (snapshots.size() <= 1) break;
        // Terminal (halted, deadlocked, or violated): rewind somewhere
        // random and keep walking, so post-terminal undo is exercised too.
        const std::size_t pick = rng.below(snapshots.size());
        live.rollback(snapshots[pick].first);
        depth = snapshots[pick].first;
        expect_observationally_equal(live, snapshots[pick].second, seed, depth);
        snapshots.erase(snapshots.begin() + static_cast<std::ptrdiff_t>(pick) + 1,
                        snapshots.end());
        continue;
      }
      live.apply(enabled[rng.below(enabled.size())]);
      ++depth;
      if (rng.chance(1, 3)) snapshots.emplace_back(live.checkpoint(), live);
      if (rng.chance(1, 6)) {
        const std::size_t pick = rng.below(snapshots.size());
        live.rollback(snapshots[pick].first);
        depth = snapshots[pick].first;
        expect_observationally_equal(live, snapshots[pick].second, seed, depth);
        // Checkpoints above the rollback target are dead; drop them so the
        // next random pick stays valid.
        snapshots.erase(snapshots.begin() + static_cast<std::ptrdiff_t>(pick) + 1,
                        snapshots.end());
      }
      if (HasFatalFailure()) return;
    }

    // Full unwind: rollback(0) must land on a pristine System.
    live.rollback(0);
    expect_observationally_equal(live, System(program), seed, 0);
    if (HasFatalFailure()) return;
  }
}

// Reclaim fuzz: discarding journal records below the oldest live
// checkpoint (reclaim_undo_below, the bounded-memory path of a long-lived
// serve-mode System) must leave rollback behavior to every surviving
// checkpoint bit-for-bit unchanged. Same walk as the main fuzz, but the
// oldest snapshots are periodically retired and the journal reclaimed to
// the new oldest live watermark; every subsequent rollback still has a
// copy-constructed ground truth to compare against, and the live record
// count is pinned to checkpoint() - undo_floor() throughout.
TEST(UndoLog, RollbackUnchangedAfterReclaim) {
  const std::uint64_t executions = support::env_u64("MCSYM_TEST_ITERS", 500);
  for (std::uint64_t i = 0; i < executions; ++i) {
    const std::uint64_t seed = 0xbeef01ULL + i * 0x9e3779b97f4a7c15ULL;
    support::Rng rng(seed);
    const Program program = check::random_program(seed, shape_for(rng));

    System live(program);
    live.enable_undo_log();
    std::vector<std::pair<System::Checkpoint, System>> snapshots;
    snapshots.emplace_back(live.checkpoint(), live);
    std::uint64_t reclaims = 0;

    std::vector<Action> enabled;
    for (int step = 0; step < 160; ++step) {
      live.enabled(enabled);
      if (enabled.empty()) {
        if (snapshots.size() <= 1) break;
        const std::size_t pick = rng.below(snapshots.size());
        live.rollback(snapshots[pick].first);
        expect_observationally_equal(live, snapshots[pick].second, seed,
                                     snapshots[pick].first);
        snapshots.erase(snapshots.begin() + static_cast<std::ptrdiff_t>(pick) + 1,
                        snapshots.end());
        continue;
      }
      live.apply(enabled[rng.below(enabled.size())]);
      if (rng.chance(1, 3)) snapshots.emplace_back(live.checkpoint(), live);

      // Retire the oldest snapshot(s) and reclaim the journal below the new
      // oldest live checkpoint — the serve-session pattern where history
      // nobody will roll back to is dropped while the walk keeps going.
      if (snapshots.size() > 2 && rng.chance(1, 5)) {
        const std::size_t retire = 1 + rng.below(snapshots.size() - 2);
        snapshots.erase(snapshots.begin(),
                        snapshots.begin() + static_cast<std::ptrdiff_t>(retire));
        live.reclaim_undo_below(snapshots.front().first);
        ++reclaims;
        ASSERT_EQ(live.undo_floor(), snapshots.front().first) << "seed=" << seed;
        // The journal holds exactly the records between the floor and the
        // current watermark: reclaimed memory is really gone.
        ASSERT_EQ(live.undo_log_size(), live.checkpoint() - live.undo_floor())
            << "seed=" << seed;
      }

      if (rng.chance(1, 6)) {
        const std::size_t pick = rng.below(snapshots.size());
        live.rollback(snapshots[pick].first);
        expect_observationally_equal(live, snapshots[pick].second, seed,
                                     snapshots[pick].first);
        snapshots.erase(snapshots.begin() + static_cast<std::ptrdiff_t>(pick) + 1,
                        snapshots.end());
      }
      if (HasFatalFailure()) return;
    }

    // Unwind to the oldest surviving checkpoint (watermark 0 may be below
    // the reclaim floor — that history is gone by design).
    live.rollback(snapshots.front().first);
    expect_observationally_equal(live, snapshots.front().second, seed,
                                 snapshots.front().first);
    // Reclaiming at or below the floor is a no-op, not an error.
    live.reclaim_undo_below(live.undo_floor());
    ASSERT_EQ(live.undo_log_size(), live.checkpoint() - live.undo_floor());
    if (HasFatalFailure()) return;
  }
}

// Watermarks are absolute apply counts, not log offsets: a checkpoint taken
// before a reclaim stays valid (and rolls back to the same state) as long
// as it is at or above the floor.
TEST(UndoLog, WatermarksStayAbsoluteAcrossReclaim) {
  const Program program = check::random_program(7);
  System live(program);
  live.enable_undo_log();
  std::vector<Action> enabled;
  auto step = [&] {
    live.enabled(enabled);
    ASSERT_FALSE(enabled.empty());
    live.apply(enabled.front());
  };
  step();
  step();
  const System::Checkpoint two = live.checkpoint();
  const System at_two(live);
  step();
  step();
  const System::Checkpoint four = live.checkpoint();
  const System at_four(live);
  step();

  live.reclaim_undo_below(two);
  EXPECT_EQ(live.undo_floor(), 2u);
  EXPECT_EQ(live.checkpoint(), 5u);  // unchanged by the reclaim
  EXPECT_EQ(live.undo_log_size(), 3u);

  live.rollback(four);
  expect_observationally_equal(live, at_four, 7, four);
  live.rollback(two);  // exactly the floor: still reachable
  expect_observationally_equal(live, at_two, 7, two);
  EXPECT_EQ(live.undo_log_size(), 0u);
}

// Undo must restore a fired violation back to "not violated": a rolled-back
// assert leaves no trace — the violation record, the terminal enabled-set
// freeze, and the branch history all revert.
TEST(UndoLog, ViolationRollsBack) {
  Program p;
  auto t = p.add_thread("t");
  t.assign("x", ThreadBuilder::c(1))
      .assert_that(Cond{t.v("x"), Rel::kEq, ThreadBuilder::c(2)});
  p.finalize();

  System sys(p);
  sys.enable_undo_log();
  std::vector<Action> enabled;
  sys.enabled(enabled);
  ASSERT_EQ(enabled.size(), 1u);
  sys.apply(enabled.front());  // assign
  const System::Checkpoint before = sys.checkpoint();
  sys.enabled(enabled);
  ASSERT_EQ(enabled.size(), 1u);
  sys.apply(enabled.front());  // assert fires
  ASSERT_TRUE(sys.has_violation());
  sys.enabled(enabled);
  EXPECT_TRUE(enabled.empty());  // violations are terminal

  sys.rollback(before);
  EXPECT_FALSE(sys.has_violation());
  sys.enabled(enabled);
  EXPECT_EQ(enabled.size(), 1u);  // the assert is steppable again
}

// Continue-past-violation mode: fired asserts are collected, not terminal,
// and the undo journal pops them back off one by one — violation() always
// names the *first* fired assert of the live prefix.
TEST(UndoLog, ContinuePastViolationCollectsAndUndoes) {
  Program p;
  auto t = p.add_thread("t");
  t.assign("x", ThreadBuilder::c(1))
      .assert_that(Cond{t.v("x"), Rel::kEq, ThreadBuilder::c(2)})   // fires
      .assert_that(Cond{t.v("x"), Rel::kEq, ThreadBuilder::c(3)})   // fires
      .assign("x", ThreadBuilder::c(9));
  p.finalize();

  System sys(p);
  sys.enable_undo_log();
  sys.set_continue_past_violation(true);
  std::vector<Action> enabled;
  auto step = [&] {
    sys.enabled(enabled);
    ASSERT_EQ(enabled.size(), 1u);
    sys.apply(enabled.front());
  };
  step();  // assign
  step();  // first assert fires
  ASSERT_TRUE(sys.has_violation());
  ASSERT_EQ(sys.violations().size(), 1u);
  const System::Checkpoint after_first = sys.checkpoint();
  step();  // second assert fires too — execution kept going
  step();  // trailing assign still runs
  ASSERT_EQ(sys.violations().size(), 2u);
  EXPECT_EQ(sys.violations()[0].op_index, 1u);
  EXPECT_EQ(sys.violations()[1].op_index, 2u);
  ASSERT_TRUE(sys.violation().has_value());
  EXPECT_EQ(sys.violation()->op_index, 1u);  // first fired assert
  EXPECT_TRUE(sys.thread_halted(0));

  sys.rollback(after_first);
  ASSERT_EQ(sys.violations().size(), 1u);
  ASSERT_TRUE(sys.violation().has_value());
  EXPECT_EQ(sys.violation()->op_index, 1u);
  sys.rollback(0);
  EXPECT_FALSE(sys.has_violation());
  EXPECT_TRUE(sys.violations().empty());
}

}  // namespace
}  // namespace mcsym::mcapi
