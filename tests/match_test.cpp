// Tests for match-pair generation: the over-approximation, the precise
// depth-first abstract execution, and their relationship.
#include <gtest/gtest.h>

#include "check/workloads.hpp"
#include "match/generators.hpp"
#include "mcapi/executor.hpp"
#include "trace/trace.hpp"

namespace mcsym::match {
namespace {

namespace wl = check::workloads;

trace::Trace record(const mcapi::Program& p, std::uint64_t seed = 1) {
  mcapi::System sys(p);
  trace::Trace tr(p);
  trace::Recorder rec(tr);
  mcapi::RandomScheduler sched(seed);
  const auto r = mcapi::run(sys, sched, &rec);
  EXPECT_TRUE(r.completed());
  return tr;
}

TEST(OverapproxTest, Figure1CandidateSets) {
  const mcapi::Program p = wl::figure1();
  const trace::Trace tr = record(p);
  const MatchSet set = generate_overapprox(tr);
  EXPECT_EQ(set.num_receives(), 3u);
  // t0's two receives on e0 can each take Y (from t2) or X (from t1);
  // t1's receive on e1 can only take Z.
  EXPECT_EQ(set.total_pairs(), 5u);
  for (const trace::EventIndex r : tr.receives()) {
    const auto& ev = tr.event(r).ev;
    if (ev.thread == 1) {
      EXPECT_EQ(set.get_sends(r).size(), 1u);
    } else {
      EXPECT_EQ(set.get_sends(r).size(), 2u);
    }
  }
}

TEST(OverapproxTest, ProgramOrderPruningDropsOwnLaterSends) {
  // Thread sends to itself after receiving: that send cannot match.
  mcapi::Program p;
  auto t = p.add_thread("t");
  auto u = p.add_thread("u");
  const auto te = p.add_endpoint("te", t.ref());
  const auto ue = p.add_endpoint("ue", u.ref());
  t.recv(te, "x").send(te, te, 9);  // self-send strictly after the recv
  u.send(ue, te, 5);
  p.finalize();
  const trace::Trace tr = record(p);

  const MatchSet pruned = generate_overapprox(tr, {.prune_program_order = true});
  OverapproxOptions no_prune;
  no_prune.prune_program_order = false;
  const MatchSet unpruned = generate_overapprox(tr, no_prune);
  EXPECT_EQ(pruned.total_pairs(), 1u);    // only u's send
  EXPECT_EQ(unpruned.total_pairs(), 2u);  // includes the impossible self-send
  EXPECT_TRUE(unpruned.covers(pruned));
}

TEST(FeasibleTest, Figure1HasExactlyTwoMatchings) {
  const mcapi::Program p = wl::figure1();
  const trace::Trace tr = record(p);
  const FeasibleResult res = enumerate_feasible(tr);
  EXPECT_FALSE(res.truncated);
  EXPECT_EQ(res.matchings.size(), 2u);  // Figures 4a and 4b
  EXPECT_GT(res.states_expanded, 0u);
}

TEST(FeasibleTest, GlobalFifoSeesOnlyFigure4a) {
  const mcapi::Program p = wl::figure1();
  const trace::Trace tr = record(p);
  FeasibleOptions mcc;
  mcc.semantics = DeliverySemantics::kGlobalFifo;
  const FeasibleResult res = enumerate_feasible(tr, mcc);
  EXPECT_EQ(res.matchings.size(), 1u);  // the MCC behavior gap, Figure 4b missing
  const FeasibleResult full = enumerate_feasible(tr);
  for (const Matching& m : res.matchings) {
    EXPECT_TRUE(full.matchings.contains(m));
  }
}

TEST(FeasibleTest, PreciseSetIsCoveredByOverapprox) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const mcapi::Program p = wl::message_race(2, 2);
    const trace::Trace tr = record(p, seed);
    const MatchSet over = generate_overapprox(tr);
    const FeasibleResult res = enumerate_feasible(tr);
    EXPECT_TRUE(over.covers(res.precise)) << "seed=" << seed;
  }
}

TEST(FeasibleTest, MessageRaceCountsMatchMultinomial) {
  // 2 senders x 2 messages: 4!/(2!2!) = 6 interleavings.
  const mcapi::Program p = wl::message_race(2, 2);
  const trace::Trace tr = record(p);
  EXPECT_EQ(enumerate_feasible(tr).matchings.size(), 6u);
  // 3 senders x 1 message: 3! = 6.
  const mcapi::Program p2 = wl::message_race(3, 1);
  const trace::Trace tr2 = record(p2);
  EXPECT_EQ(enumerate_feasible(tr2).matchings.size(), 6u);
}

TEST(FeasibleTest, SingleChannelIsDeterministic) {
  const mcapi::Program p = wl::pipeline(3, 2);
  const trace::Trace tr = record(p);
  const FeasibleResult res = enumerate_feasible(tr);
  EXPECT_EQ(res.matchings.size(), 1u);  // FIFO pins everything
}

TEST(FeasibleTest, NonblockingWindowAdmitsLateSend) {
  const mcapi::Program p = wl::nonblocking_window();
  const trace::Trace tr = record(p, 3);
  const FeasibleResult res = enumerate_feasible(tr);
  // The recv_i can take the early message (11) or the self-triggered late
  // one (99): two complete matchings.
  EXPECT_EQ(res.matchings.size(), 2u);
}

TEST(FeasibleTest, TruncationFlagHonored) {
  const mcapi::Program p = wl::message_race(3, 2);
  const trace::Trace tr = record(p);
  FeasibleOptions opts;
  opts.max_paths = 3;
  const FeasibleResult res = enumerate_feasible(tr, opts);
  EXPECT_TRUE(res.truncated);
  EXPECT_LE(res.paths_explored, 3u);
}

TEST(MatchSetTest, BasicOperations) {
  MatchSet s;
  EXPECT_EQ(s.num_receives(), 0u);
  s.add(1, 10);
  s.add(1, 11);
  s.add(1, 10);  // duplicate ignored
  EXPECT_EQ(s.get_sends(1).size(), 2u);
  EXPECT_TRUE(s.contains(1, 10));
  EXPECT_FALSE(s.contains(1, 12));
  EXPECT_TRUE(s.get_sends(99).empty());
  s.add_all(2, {20, 21, 21, 20});
  EXPECT_EQ(s.get_sends(2).size(), 2u);
  EXPECT_EQ(s.total_pairs(), 4u);

  MatchSet sub;
  sub.add(1, 10);
  EXPECT_TRUE(s.covers(sub));
  sub.add(3, 30);
  EXPECT_FALSE(s.covers(sub));
}

TEST(MatchSetTest, SummaryIsHumanReadable) {
  const mcapi::Program p = wl::figure1();
  const trace::Trace tr = record(p);
  const MatchSet set = generate_overapprox(tr);
  const std::string s = set.summary(tr);
  EXPECT_NE(s.find("t0:recv[0]"), std::string::npos);
  EXPECT_NE(s.find("send"), std::string::npos);
}

}  // namespace
}  // namespace mcsym::match
