// Differential fuzzing: symbolic vs explicit-state vs DPOR on randomized
// MCAPI programs, with witness replay. See src/check/differential.hpp for
// what "agreement" means precisely.
//
// Iteration count scales with MCSYM_TEST_ITERS (programs to generate):
// the default suits CI; nightly runs export e.g. MCSYM_TEST_ITERS=5000.
// Any mismatch prints the RNG seed that produced it; replay with
// differential_iteration(seed, ...) under a debugger.
#include <gtest/gtest.h>

#include <iostream>

#include "check/differential.hpp"
#include "support/env.hpp"

namespace mcsym::check {
namespace {

TEST(DifferentialFuzz, EnginesAgreeOnRandomizedPrograms) {
  DifferentialOptions opts;
  opts.iterations = support::env_u64("MCSYM_TEST_ITERS", 200);

  const DifferentialReport report = run_differential(0x4d435359u /*"MCSY"*/, opts);
  std::cerr << "[differential] " << report.summary() << "\n";

  for (const DifferentialMismatch& m : report.mismatches) {
    ADD_FAILURE() << "seed=" << m.seed << " (replay: differential_iteration(" << m.seed
                  << "ULL, opts, report)): " << m.detail;
  }

  // The corpus must actually exercise both verdicts and the replayer; a
  // harness that silently skips everything would otherwise pass vacuously.
  // Tiny MCSYM_TEST_ITERS runs (quick local smokes) can legitimately miss a
  // verdict class, so the coverage gates only apply at realistic depth.
  EXPECT_GT(report.programs, opts.iterations / 2) << report.summary();
  if (opts.iterations >= 50) {
    EXPECT_GT(report.sat_verdicts, 0u) << report.summary();
    EXPECT_GT(report.unsat_verdicts, 0u) << report.summary();
    EXPECT_GT(report.witnesses_replayed, 0u) << report.summary();
    EXPECT_GT(report.enumerations_checked, 0u) << report.summary();
  }
}

TEST(DifferentialFuzz, DeterministicForFixedSeed) {
  DifferentialOptions opts;
  opts.iterations = 20;
  const DifferentialReport a = run_differential(0xfeedULL, opts);
  const DifferentialReport b = run_differential(0xfeedULL, opts);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.mismatches.size(), b.mismatches.size());
}

TEST(DifferentialFuzz, SingleIterationIsReplayable) {
  DifferentialOptions opts;
  DifferentialReport r1, r2;
  differential_iteration(42, opts, r1);
  differential_iteration(42, opts, r2);
  EXPECT_EQ(r1.summary(), r2.summary());
}

}  // namespace
}  // namespace mcsym::check
