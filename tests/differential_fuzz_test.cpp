// Differential fuzzing: symbolic vs explicit-state vs DPOR (optimal and
// sleep-set modes) on randomized MCAPI programs, with witness replay. See
// src/check/differential.hpp for what "agreement" means precisely.
//
// Iteration count scales with MCSYM_TEST_ITERS (programs to generate):
// the default suits CI; nightly runs export e.g. MCSYM_TEST_ITERS=5000.
// Any mismatch prints the RNG seed that produced it; replay with
// differential_iteration(seed, ...) under a debugger. When
// MCSYM_FAIL_SEED_FILE is set, mismatching seeds are appended there too so
// scheduled CI runs can upload them as artifacts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "check/differential.hpp"
#include "support/env.hpp"

namespace mcsym::check {
namespace {

void report_mismatches(const DifferentialReport& report, const char* battery) {
  for (const DifferentialMismatch& m : report.mismatches) {
    ADD_FAILURE() << battery << " seed=" << m.seed
                  << " (replay: differential_iteration(" << m.seed
                  << "ULL, opts, report)): " << m.detail;
  }
  const char* path = std::getenv("MCSYM_FAIL_SEED_FILE");
  if (path != nullptr && !report.mismatches.empty()) {
    // Sharded suites append concurrently: one buffered write per batch
    // keeps lines from interleaving mid-entry in the shared artifact.
    std::ostringstream batch;
    for (const DifferentialMismatch& m : report.mismatches) {
      batch << battery << " " << m.seed << " " << m.detail << "\n";
    }
    std::ofstream(path, std::ios::app) << batch.str() << std::flush;
  }
}

TEST(DifferentialFuzz, EnginesAgreeOnRandomizedPrograms) {
  DifferentialOptions opts;
  opts.iterations = support::env_u64("MCSYM_TEST_ITERS", 150);

  const DifferentialReport report = run_differential(0x4d435359u /*"MCSY"*/, opts);
  std::cerr << "[differential] " << report.summary() << "\n";
  report_mismatches(report, "default");

  // The corpus must actually exercise both verdicts and the replayer; a
  // harness that silently skips everything would otherwise pass vacuously.
  // Tiny MCSYM_TEST_ITERS runs (quick local smokes) can legitimately miss a
  // verdict class, so the coverage gates only apply at realistic depth.
  EXPECT_GT(report.programs, opts.iterations / 2) << report.summary();
  if (opts.iterations >= 50) {
    EXPECT_GT(report.sat_verdicts, 0u) << report.summary();
    EXPECT_GT(report.unsat_verdicts, 0u) << report.summary();
    EXPECT_GT(report.witnesses_replayed, 0u) << report.summary();
    EXPECT_GT(report.enumerations_checked, 0u) << report.summary();
  }
}

TEST(DifferentialFuzz, DeadlockVerdictsAgreeAcrossEngines) {
  DifferentialOptions opts;
  opts.allow_deadlocks = true;
  opts.iterations = support::env_u64("MCSYM_TEST_ITERS", 150);

  const DifferentialReport report = run_differential(0xdead10c5ULL, opts);
  std::cerr << "[differential/deadlock] " << report.summary() << "\n";
  report_mismatches(report, "deadlock");

  EXPECT_GT(report.programs, opts.iterations / 2) << report.summary();
  if (opts.iterations >= 50) {
    // The battery must actually reach deadlocks — whole-program verdicts,
    // replayed schedules, and concrete deadlocked runs — or the deadlock
    // cross-checks would pass vacuously.
    EXPECT_GT(report.deadlock_programs, 0u) << report.summary();
    EXPECT_GT(report.deadlock_schedules_replayed, 0u) << report.summary();
    EXPECT_GT(report.deadlocked_runs, 0u) << report.summary();
    // Clean verdicts must appear too (not every mutated program hangs).
    EXPECT_LT(report.deadlock_programs, report.programs) << report.summary();
  }
}

TEST(DifferentialFuzz, ParallelDporAgreesWithSerial) {
  // dpor_workers > 1 shards the optimal-DPOR stage AND adds the direct
  // serial-vs-parallel head-to-head (verdicts, trace counters, witness
  // replay) to every iteration. Zero mismatches means the sharded engine
  // never diverged from its own serial run across the whole battery.
  DifferentialOptions opts;
  opts.dpor_workers = 4;
  opts.allow_deadlocks = true;
  opts.iterations = support::env_u64("MCSYM_TEST_ITERS", 150);

  const DifferentialReport report =
      run_differential(0x70617261ULL /*"para"*/, opts);
  std::cerr << "[differential/parallel] " << report.summary() << "\n";
  report_mismatches(report, "parallel");
  EXPECT_GT(report.programs, opts.iterations / 2) << report.summary();
}

TEST(DifferentialFuzz, DeterministicForFixedSeed) {
  DifferentialOptions opts;
  opts.iterations = 20;
  const DifferentialReport a = run_differential(0xfeedULL, opts);
  const DifferentialReport b = run_differential(0xfeedULL, opts);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.mismatches.size(), b.mismatches.size());
}

TEST(DifferentialFuzz, SingleIterationIsReplayable) {
  DifferentialOptions opts;
  DifferentialReport r1, r2;
  differential_iteration(42, opts, r1);
  differential_iteration(42, opts, r2);
  EXPECT_EQ(r1.summary(), r2.summary());
}

}  // namespace
}  // namespace mcsym::check
