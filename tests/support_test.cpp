// Unit tests for the support library.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "support/hash.hpp"
#include "support/intern.hpp"
#include "support/rng.hpp"
#include "support/small_vector.hpp"
#include "support/stats.hpp"

namespace mcsym::support {
namespace {

// --- StateHasher -------------------------------------------------------

TEST(StateHasherTest, DeterministicAndOrderSensitive) {
  StateHasher a;
  a.mix(1);
  a.mix(2);
  StateHasher b;
  b.mix(1);
  b.mix(2);
  EXPECT_EQ(a.digest(), b.digest());

  StateHasher c;
  c.mix(2);
  c.mix(1);
  EXPECT_FALSE(a.digest() == c.digest()) << "mix order must matter";
}

TEST(StateHasherTest, LanesAreIndependent) {
  // A 64-bit collision in one lane must not imply one in the other: check
  // that across many inputs no digest repeats and lo != hi.
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    StateHasher h;
    h.mix(v);
    const Hash128 d = h.digest();
    EXPECT_NE(d.lo, d.hi) << v;
    EXPECT_TRUE(seen.emplace(d.lo, d.hi).second) << "collision at " << v;
  }
}

TEST(StateHasherTest, UnorderedMixIsCommutative) {
  StateHasher x;
  x.mix(7);
  StateHasher y;
  y.mix(9);

  StateHasher ab;
  ab.mix(1);
  ab.mix_unordered(x.digest());
  ab.mix_unordered(y.digest());
  StateHasher ba;
  ba.mix(1);
  ba.mix_unordered(y.digest());
  ba.mix_unordered(x.digest());
  EXPECT_EQ(ab.digest(), ba.digest());
}

TEST(StateHasherTest, SignedValuesRoundTrip) {
  StateHasher neg;
  neg.mix_signed(-5);
  StateHasher pos;
  pos.mix_signed(5);
  EXPECT_FALSE(neg.digest() == pos.digest());
}

// --- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ReseedResets) {
  Rng rng(5);
  const std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(5);
  EXPECT_EQ(rng.next_u64(), first);
}

// --- SmallVector ----------------------------------------------------------

TEST(SmallVectorTest, StartsEmptyInline) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVectorTest, PushWithinInlineCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVectorTest, GrowsToHeap) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVectorTest, SwapRemoveIsO1Unordered) {
  SmallVector<int, 4> v{1, 2, 3, 4};
  v.swap_remove(0);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.contains(4));
  EXPECT_FALSE(v.contains(1));
}

TEST(SmallVectorTest, EraseKeepsOrder) {
  SmallVector<int, 4> v{1, 2, 3, 4};
  v.erase(v.begin() + 1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 3);
  EXPECT_EQ(v[2], 4);
}

TEST(SmallVectorTest, CopyIndependent) {
  SmallVector<int, 2> a{1, 2, 3};
  SmallVector<int, 2> b = a;
  b.push_back(4);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 4u);
  a[0] = 99;
  EXPECT_EQ(b[0], 1);
}

TEST(SmallVectorTest, MoveStealsHeapBlock) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  const int* data = a.data();
  SmallVector<int, 2> b = std::move(a);
  EXPECT_EQ(b.data(), data);  // heap block moved, not copied
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a.empty());
}

TEST(SmallVectorTest, MoveInlineCopies) {
  SmallVector<int, 8> a{1, 2, 3};
  SmallVector<int, 8> b = std::move(a);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], 3);
}

TEST(SmallVectorTest, ResizeAndClear) {
  SmallVector<int, 2> v;
  v.resize(5, 7);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 7);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVectorTest, Equality) {
  SmallVector<int, 2> a{1, 2};
  SmallVector<int, 2> b{1, 2};
  SmallVector<int, 2> c{1, 3};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// --- Interner ----------------------------------------------------------

TEST(InternerTest, SameStringSameSymbol) {
  Interner in;
  EXPECT_EQ(in.intern("abc"), in.intern("abc"));
}

TEST(InternerTest, DifferentStringsDifferentSymbols) {
  Interner in;
  EXPECT_NE(in.intern("abc"), in.intern("abd"));
}

TEST(InternerTest, SpellingRoundTrip) {
  Interner in;
  const Symbol s = in.intern("hello");
  EXPECT_EQ(in.spelling(s), "hello");
}

TEST(InternerTest, FindDoesNotCreate) {
  Interner in;
  EXPECT_FALSE(in.find("missing").valid());
  in.intern("present");
  EXPECT_TRUE(in.find("present").valid());
  EXPECT_EQ(in.size(), 1u);
}

TEST(InternerTest, ManySymbolsStayStable) {
  Interner in;
  std::vector<Symbol> syms;
  for (int i = 0; i < 1000; ++i) syms.push_back(in.intern("sym" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.spelling(syms[static_cast<std::size_t>(i)]),
              "sym" + std::to_string(i));
    EXPECT_EQ(in.find("sym" + std::to_string(i)), syms[static_cast<std::size_t>(i)]);
  }
}

TEST(InternerTest, InvalidSymbolIsFalsy) {
  Symbol s;
  EXPECT_FALSE(s.valid());
}

// --- RunningStats ----------------------------------------------------------

TEST(StatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, MeanMinMax) {
  RunningStats s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(StatsTest, VarianceMatchesTextbook) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, SummaryMentionsCount) {
  RunningStats s;
  s.add(1.5);
  EXPECT_NE(s.summary().find("n=1"), std::string::npos);
}

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch w;
  const double a = w.seconds();
  const double b = w.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace mcsym::support
