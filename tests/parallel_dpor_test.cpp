// Determinism contract of the sharded optimal-DPOR engine
// (DporOptions::workers > 1, src/check/dpor_parallel.cpp):
//
//  * trace-determined counters — executions, terminal_states, deadlock
//    verdicts — and all verdicts are identical to the serial engine for
//    every worker count (raced duplicate explorations are killed by their
//    sleep sets before completing and land in parallel_duplicates, never
//    in the trace counters);
//  * redundant_explorations is 0 by construction;
//  * transitions is charged arrival-edge-exact — each completed
//    execution's full path length at retirement. Every linearization of a
//    Mazurkiewicz trace has the same length, so the counter is EXACTLY
//    equal to serial at every worker count, even when a claim race changes
//    which linearization of a trace completes;
//  * budgets truncate and violations/deadlocks replay exactly like serial.
//
// The random battery scales with MCSYM_TEST_ITERS (default 200 seeds; CI's
// sanitizer jobs trim it, nightly cranks it). This suite is also the
// ThreadSanitizer workload for the parallel engine: every test hammers the
// shared tree from workers ∈ {2, 4, 8, 16}, and the steal-path battery
// adds narrow-root workloads where helping at all REQUIRES stealing.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/dpor.hpp"
#include "check/random_program.hpp"
#include "check/workloads.hpp"
#include "mcapi/executor.hpp"
#include "support/env.hpp"

namespace mcsym::check {
namespace {

namespace wl = workloads;

constexpr std::uint32_t kWorkerCounts[] = {1, 2, 4, 8, 16};

DporResult run_optimal(const mcapi::Program& p, std::uint32_t workers) {
  DporOptions opts;
  opts.workers = workers;
  DporChecker checker(p, opts);
  return checker.run();
}

/// `pairs` disjoint sender/receiver thread pairs on disjoint endpoints:
/// the dependence graph decomposes into independent chains, so the whole
/// program has exactly ONE Mazurkiewicz trace — the degenerate case where
/// any duplicated parallel exploration shows up immediately.
mcapi::Program independent_writers(std::uint32_t pairs) {
  mcapi::Program p;
  for (std::uint32_t i = 0; i < pairs; ++i) {
    auto s = p.add_thread("s" + std::to_string(i));
    auto r = p.add_thread("r" + std::to_string(i));
    const auto es = p.add_endpoint("es" + std::to_string(i), s.ref());
    const auto er = p.add_endpoint("er" + std::to_string(i), r.ref());
    s.send(es, er, 1).send(es, er, 2);
    r.recv(er, "a").recv(er, "b");
  }
  p.finalize();
  return p;
}

struct PinnedCase {
  const char* name;
  mcapi::Program program;
  std::uint64_t traces;  // closed-form Mazurkiewicz trace count
};

std::vector<PinnedCase> pinned_cases() {
  std::vector<PinnedCase> cases;
  cases.push_back({"figure1", wl::figure1(), 2});
  cases.push_back({"message_race(2,2)", wl::message_race(2, 2), 6});
  cases.push_back({"message_race(3,2)", wl::message_race(3, 2), 90});
  cases.push_back({"message_race(4,2)", wl::message_race(4, 2), 2520});
  cases.push_back({"independent_writers(3)", independent_writers(3), 1});
  return cases;
}

// Every pinned workload completes at exactly its closed-form trace count
// for every worker count; workers == 1 reproduces the serial engine's
// counters byte-for-byte, and the arrival-edge-exact transitions charge is
// serial-identical at every worker count.
TEST(ParallelDporTest, PinnedClosedFormsAcrossWorkerCounts) {
  for (PinnedCase& c : pinned_cases()) {
    const DporResult serial = run_optimal(c.program, 1);
    ASSERT_FALSE(serial.truncated) << c.name;
    EXPECT_EQ(serial.stats.executions, c.traces) << c.name;
    EXPECT_EQ(serial.stats.terminal_states, c.traces) << c.name;
    EXPECT_EQ(serial.stats.redundant_explorations, 0u) << c.name;
    EXPECT_EQ(serial.stats.parallel_duplicates, 0u) << c.name;
    for (const std::uint32_t workers : kWorkerCounts) {
      const DporResult r = run_optimal(c.program, workers);
      SCOPED_TRACE(std::string(c.name) + " workers=" +
                   std::to_string(workers));
      EXPECT_FALSE(r.truncated);
      EXPECT_FALSE(r.violation_found);
      EXPECT_FALSE(r.deadlock_found);
      EXPECT_EQ(r.stats.executions, c.traces);
      EXPECT_EQ(r.stats.terminal_states, c.traces);
      EXPECT_EQ(r.stats.redundant_explorations, 0u);
      EXPECT_EQ(r.stats.transitions, serial.stats.transitions);
      if (workers == 1) {
        EXPECT_EQ(r.stats.parallel_duplicates, 0u);
      }
    }
  }
}

// The randomized battery: every generated program (the dpor_test seed
// stream, offset so the suites diverge) must agree with its own serial run
// for every worker count — verdicts exactly, trace counters exactly on
// violation-free programs, counterexamples replaying on violating ones.
class ParallelDporRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDporRandomTest, MatchesSerialEngine) {
  const mcapi::Program p = random_program(GetParam());
  const DporResult serial = run_optimal(p, 1);
  if (serial.truncated) GTEST_SKIP() << "serial run over budget";
  for (const std::uint32_t workers : {2u, 4u, 8u}) {
    const DporResult r = run_optimal(p, workers);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ASSERT_FALSE(r.truncated);
    ASSERT_EQ(r.violation_found, serial.violation_found);
    if (serial.violation_found) {
      // Early exit makes the remaining counters exploration-order noise;
      // the witness itself is the contract.
      ASSERT_FALSE(r.counterexample.empty());
      mcapi::System sys(p);
      mcapi::ReplayScheduler replay(r.counterexample);
      EXPECT_EQ(
          mcapi::run(sys, replay, nullptr, r.counterexample.size() + 1).outcome,
          mcapi::RunResult::Outcome::kViolation);
      continue;
    }
    EXPECT_EQ(r.deadlock_found, serial.deadlock_found);
    EXPECT_EQ(r.stats.terminal_states, serial.stats.terminal_states);
    // Sleep-set-blocked paths (possible serially only under observer ops)
    // land in parallel_duplicates when sharded, so the exact relation is
    // executions == serial executions - serial redundant.
    EXPECT_EQ(r.stats.executions,
              serial.stats.executions - serial.stats.redundant_explorations);
    EXPECT_EQ(r.stats.redundant_explorations, 0u);
    // Arrival-edge-exact charging: blocked/duplicate paths charge nothing
    // in either engine, so the sum over completed traces is identical.
    EXPECT_EQ(r.stats.transitions, serial.stats.transitions);
    if (r.deadlock_found) {
      mcapi::System sys(p);
      mcapi::ReplayScheduler replay(r.deadlock_schedule);
      EXPECT_EQ(mcapi::run(sys, replay, nullptr, r.deadlock_schedule.size() + 1)
                    .outcome,
                mcapi::RunResult::Outcome::kDeadlock);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ParallelDporRandomTest,
    ::testing::Range<std::uint64_t>(
        500, 500 + support::env_u64("MCSYM_TEST_ITERS", 200)));

// A violating workload across worker counts: the first finder stops every
// worker, the verdict is stable, and the counterexample replays.
TEST(ParallelDporTest, ViolationFoundAndReplays) {
  const mcapi::Program p = wl::scatter_gather(2);
  for (const std::uint32_t workers : kWorkerCounts) {
    const DporResult r = run_optimal(p, workers);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ASSERT_TRUE(r.violation_found);
    ASSERT_TRUE(r.violation.has_value());
    ASSERT_FALSE(r.counterexample.empty());
    mcapi::System sys(p);
    mcapi::ReplayScheduler replay(r.counterexample);
    EXPECT_EQ(
        mcapi::run(sys, replay, nullptr, r.counterexample.size() + 1).outcome,
        mcapi::RunResult::Outcome::kViolation);
  }
}

// Root-state deadlock (both threads block on their first instruction):
// exercises the parallel run()'s serial-mirroring first iteration, where
// no worker is ever spawned.
TEST(ParallelDporTest, InitialDeadlockDetected) {
  mcapi::Program p;
  auto a = p.add_thread("a");
  auto b = p.add_thread("b");
  const auto ea = p.add_endpoint("ea", a.ref());
  const auto eb = p.add_endpoint("eb", b.ref());
  a.recv(ea, "x").send(ea, eb, 1);
  b.recv(eb, "y").send(eb, ea, 2);
  p.finalize();
  for (const std::uint32_t workers : kWorkerCounts) {
    const DporResult r = run_optimal(p, workers);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_TRUE(r.deadlock_found);
    mcapi::System sys(p);
    mcapi::ReplayScheduler replay(r.deadlock_schedule);
    EXPECT_EQ(mcapi::run(sys, replay, nullptr, r.deadlock_schedule.size() + 1)
                  .outcome,
              mcapi::RunResult::Outcome::kDeadlock);
  }
}

// Both budget axes truncate a sharded search promptly and cleanly: the
// transition counter is shared (atomic), the wall clock is probed by every
// worker on the serial engine's amortized schedule.
TEST(ParallelDporTest, BudgetsTruncateSharded) {
  const mcapi::Program p = wl::message_race(3, 2);
  for (const std::uint32_t workers : {2u, 4u, 8u}) {
    DporOptions opts;
    opts.workers = workers;
    opts.max_transitions = 10;
    const DporResult tr = DporChecker(p, opts).run();
    EXPECT_TRUE(tr.truncated) << "workers=" << workers;

    DporOptions wopts;
    wopts.workers = workers;
    wopts.max_seconds = 1e-9;
    const DporResult wr = DporChecker(p, wopts).run();
    EXPECT_TRUE(wr.truncated) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Steal-path battery: narrow-root workloads where the exploration tree
// starts as a single path, so a sharded run can only use its extra workers
// by STEALING from inside the first worker's subtree — the work-stealing
// scheduler's raison d'être. The contract is the same serial-identity as
// everywhere else; what these cases add is that the identity holds when
// essentially every branch a non-first worker runs arrived via steal().
// ---------------------------------------------------------------------------

// token_fanout: exactly one action enabled at the root (the token
// injection; every other thread blocks on a gate receive), then a racers!
// payload race once the token has threaded through. scatter_gather_safe:
// the symmetric wide-frontier shape the bench gates on. Both safe, so the
// full trace space is explored at every worker count.
TEST(ParallelDporTest, StealPathBatteryMatchesSerial) {
  struct Case {
    const char* name;
    mcapi::Program program;
  };
  std::vector<Case> cases;
  cases.push_back({"token_fanout(4)", wl::token_fanout(4)});
  cases.push_back({"token_fanout(5)", wl::token_fanout(5)});
  cases.push_back({"scatter_gather_safe(3)", wl::scatter_gather_safe(3)});
  cases.push_back({"scatter_gather_safe(4)", wl::scatter_gather_safe(4)});
  for (Case& c : cases) {
    const DporResult serial = run_optimal(c.program, 1);
    ASSERT_FALSE(serial.truncated) << c.name;
    EXPECT_EQ(serial.stats.redundant_explorations, 0u) << c.name;
    for (const std::uint32_t workers : {2u, 4u, 8u}) {
      const DporResult r = run_optimal(c.program, workers);
      SCOPED_TRACE(std::string(c.name) + " workers=" +
                   std::to_string(workers));
      EXPECT_FALSE(r.truncated);
      EXPECT_FALSE(r.violation_found);
      EXPECT_FALSE(r.deadlock_found);
      EXPECT_EQ(r.stats.executions, serial.stats.executions);
      EXPECT_EQ(r.stats.terminal_states, serial.stats.terminal_states);
      EXPECT_EQ(r.stats.transitions, serial.stats.transitions);
      EXPECT_EQ(r.stats.redundant_explorations, 0u);
    }
  }
}

// Scheduler telemetry invariants. The VALUES are timing-dependent (they
// count scheduling work, like races_detected), so the pins are structural:
// serial runs report all-zero telemetry, and in a sharded run every worker
// other than the seed-holder must log at least one steal or one failed
// steal round before it can touch any work — so steals + steal_failures
// >= workers - 1 unconditionally, even on a single-core host where the
// fleet mostly arrives after the tree is drained.
TEST(ParallelDporTest, SchedulerTelemetryInvariants) {
  const mcapi::Program p = wl::token_fanout(5);
  const DporResult serial = run_optimal(p, 1);
  EXPECT_EQ(serial.stats.steals, 0u);
  EXPECT_EQ(serial.stats.steal_failures, 0u);
  EXPECT_EQ(serial.stats.claim_conflicts, 0u);
  EXPECT_EQ(serial.stats.max_replay_depth, 0u);
  EXPECT_EQ(serial.stats.parallel_duplicates, 0u);
  for (const std::uint32_t workers : {2u, 4u, 8u}) {
    const DporResult r = run_optimal(p, workers);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_GE(r.stats.steals + r.stats.steal_failures,
              static_cast<std::uint64_t>(workers) - 1);
    // A replay can never be deeper than the longest execution, and a
    // stolen branch is replayed from the root at most once per claim.
    EXPECT_LE(r.stats.max_replay_depth, serial.stats.transitions);
  }
}

// Steal-heavy stress case, sized for the TSan CI leg (this suite is the
// sanitizer workload for the parallel engine): a deeper token chain whose
// fanout keeps all 8 workers stealing against each other for the whole
// run, hammering the claim CAS, the deque top_ CAS, the node-local graft
// locks, and the quiescence counter at once.
TEST(ParallelDporTest, StealHeavyStressMatchesSerial) {
  const mcapi::Program p = wl::token_fanout(6);
  const DporResult serial = run_optimal(p, 1);
  ASSERT_FALSE(serial.truncated);
  for (const std::uint32_t workers : {4u, 8u}) {
    const DporResult r = run_optimal(p, workers);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(r.stats.executions, serial.stats.executions);
    EXPECT_EQ(r.stats.terminal_states, serial.stats.terminal_states);
    EXPECT_EQ(r.stats.transitions, serial.stats.transitions);
  }
}

// The cooperative cancellation hook is probed concurrently by every
// worker; returning true must stop the whole fleet with truncated set.
TEST(ParallelDporTest, InterruptStopsAllWorkers) {
  const mcapi::Program p = wl::message_race(4, 2);
  DporOptions opts;
  opts.workers = 4;
  opts.interrupted = [] { return true; };
  const DporResult r = DporChecker(p, opts).run();
  EXPECT_TRUE(r.truncated);
  EXPECT_LT(r.stats.executions, 2520u);  // stopped well before completion
}

}  // namespace
}  // namespace mcsym::check
