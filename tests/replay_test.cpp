// Witness replay soundness: every model the symbolic engine produces must
// correspond to a schedule the real runtime can execute, reproducing the
// same matching (and the violation when one was claimed).
#include <gtest/gtest.h>

#include "check/random_program.hpp"
#include "check/symbolic_checker.hpp"
#include "check/witness_replay.hpp"
#include "check/workloads.hpp"
#include "encode/encoder.hpp"
#include "encode/witness.hpp"
#include "match/generators.hpp"
#include "mcapi/executor.hpp"
#include "smt/solver.hpp"
#include "trace/trace.hpp"

namespace mcsym::check {
namespace {

namespace wl = workloads;

trace::Trace record(const mcapi::Program& p, std::uint64_t seed = 1,
                    bool require_complete = true) {
  mcapi::System sys(p);
  trace::Trace tr(p);
  trace::Recorder rec(tr);
  mcapi::RandomScheduler sched(seed);
  const auto r = mcapi::run(sys, sched, &rec);
  if (require_complete) {
    EXPECT_TRUE(r.completed());
  }
  return tr;
}

TEST(ReplayTest, Figure1ViolationWitnessReplays) {
  const auto [program, properties] = wl::figure1_with_property();
  const trace::Trace tr = record(program, 42, false);
  SymbolicChecker checker(tr);
  const SymbolicVerdict v = checker.check(properties);
  ASSERT_TRUE(v.violation_possible());
  ASSERT_TRUE(v.witness.has_value());

  const auto replayed = schedule_from_witness(program, tr, *v.witness);
  ASSERT_TRUE(replayed.has_value()) << "witness schedule diverged from runtime";
  // The in-program assertion fires on replay: the bug is real.
  EXPECT_TRUE(replayed->violation);
  EXPECT_FALSE(replayed->script.empty());
}

TEST(ReplayTest, ContinuePastViolationRealizesTheWholeExecution) {
  // Default replay stops at the first fired assert and validates only the
  // realized prefix; continue-past-violation realizes the whole execution
  // the model values, holds the matching to exact equality, and reports
  // every fired assert.
  const auto [program, properties] = wl::figure1_with_property();
  (void)properties;
  const trace::Trace tr = record(program, 42, false);
  SymbolicChecker checker(tr);
  const SymbolicVerdict v = checker.check();
  ASSERT_TRUE(v.violation_possible());
  ASSERT_TRUE(v.witness.has_value());

  const auto prefix = schedule_from_witness(program, tr, *v.witness);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->violation);

  ReplayOptions ro;
  ro.continue_past_violation = true;
  const auto full = schedule_from_witness(program, tr, *v.witness, ro);
  ASSERT_TRUE(full.has_value());
  EXPECT_TRUE(full->violation);
  ASSERT_FALSE(full->violations.empty());
  // The full replay covers at least the prefix replay's schedule: nothing
  // the model valued was left unexecuted.
  EXPECT_GE(full->script.size(), prefix->script.size());
}

TEST(ReplayTest, ScatterGatherWitnessReplays) {
  const mcapi::Program p = wl::scatter_gather(3);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    mcapi::System sys(p);
    trace::Trace tr(p);
    trace::Recorder rec(tr);
    mcapi::RandomScheduler sched(seed);
    if (!mcapi::run(sys, sched, &rec).completed()) continue;
    SymbolicChecker checker(tr);
    const SymbolicVerdict v = checker.check();
    ASSERT_TRUE(v.violation_possible());
    const auto replayed = schedule_from_witness(p, tr, *v.witness);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_TRUE(replayed->violation);
    return;
  }
  FAIL() << "no completing run";
}

// Replay every matching produced during enumeration (not just the first
// model) across a grab bag of workloads, including non-blocking ones.
class ReplayEnumerationTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ReplayEnumerationTest, EveryEnumeratedModelReplays) {
  const auto [which, seed] = GetParam();
  mcapi::Program program;
  switch (which) {
    case 0: program = wl::figure1(); break;
    case 1: program = wl::message_race(2, 2); break;
    case 2: program = wl::nonblocking_gather(3); break;
    case 3: program = wl::nonblocking_window(); break;
    case 4: program = wl::reversed_waits(); break;
    default: {
      RandomProgramOptions opts;
      opts.allow_nonblocking = true;
      program = random_program(seed, opts);
      break;
    }
  }
  trace::Trace tr(program);
  {
    mcapi::System sys(program);
    trace::Recorder rec(tr);
    mcapi::RandomScheduler sched(seed + 1);
    if (!mcapi::run(sys, sched, &rec).completed()) {
      GTEST_SKIP() << "recorded run did not complete (racy assert)";
    }
  }

  const match::MatchSet set = match::generate_overapprox(tr);
  smt::Solver solver;
  encode::EncodeOptions opts;
  opts.property_mode = encode::PropertyMode::kIgnore;
  encode::Encoder encoder(solver, tr, set, opts);
  const encode::Encoding enc = encoder.encode();
  const auto projection = enc.id_projection();

  std::size_t models = 0;
  while (solver.check() == smt::SolveResult::kSat) {
    const encode::Witness w = encode::decode_witness(solver, enc, tr);
    const auto replayed = schedule_from_witness(program, tr, w);
    ASSERT_TRUE(replayed.has_value())
        << "unsound model for workload " << which << " seed " << seed << ":\n"
        << w.to_string(tr);
    ++models;
    solver.block_current_ints(projection);
    ASSERT_LT(models, 200u);
  }
  EXPECT_GT(models, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ReplayEnumerationTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values<std::uint64_t>(3, 17, 59)));

}  // namespace
}  // namespace mcsym::check
