// Tests for the integer-difference-logic theory through the solver facade,
// including a randomized cross-check against a Bellman-Ford ground truth.
#include <gtest/gtest.h>

#include <vector>

#include "smt/solver.hpp"
#include "support/rng.hpp"

namespace mcsym::smt {
namespace {

TEST(IdlTest, SimpleChainSat) {
  Solver s;
  auto& tt = s.terms();
  const TermId a = tt.int_var("a");
  const TermId b = tt.int_var("b");
  const TermId c = tt.int_var("c");
  s.assert_term(tt.lt(a, b));
  s.assert_term(tt.lt(b, c));
  ASSERT_EQ(s.check(), SolveResult::kSat);
  EXPECT_LT(s.model_int(a), s.model_int(b));
  EXPECT_LT(s.model_int(b), s.model_int(c));
}

TEST(IdlTest, CycleUnsat) {
  Solver s;
  auto& tt = s.terms();
  const TermId a = tt.int_var("a");
  const TermId b = tt.int_var("b");
  const TermId c = tt.int_var("c");
  s.assert_term(tt.lt(a, b));
  s.assert_term(tt.lt(b, c));
  s.assert_term(tt.lt(c, a));
  EXPECT_EQ(s.check(), SolveResult::kUnsat);
}

TEST(IdlTest, NonStrictCycleSat) {
  Solver s;
  auto& tt = s.terms();
  const TermId a = tt.int_var("a");
  const TermId b = tt.int_var("b");
  s.assert_term(tt.le(a, b));
  s.assert_term(tt.le(b, a));
  ASSERT_EQ(s.check(), SolveResult::kSat);
  EXPECT_EQ(s.model_int(a), s.model_int(b));
}

TEST(IdlTest, EqualityPropagatesValues) {
  Solver s;
  auto& tt = s.terms();
  const TermId x = tt.int_var("x");
  const TermId y = tt.int_var("y");
  s.assert_term(tt.eq(x, tt.int_const(41)));
  s.assert_term(tt.eq(y, tt.add_const(x, 1)));
  ASSERT_EQ(s.check(), SolveResult::kSat);
  EXPECT_EQ(s.model_int(x), 41);
  EXPECT_EQ(s.model_int(y), 42);
}

TEST(IdlTest, DisequalitySplits) {
  Solver s;
  auto& tt = s.terms();
  const TermId x = tt.int_var("x");
  s.assert_term(tt.ge(x, tt.int_const(0)));
  s.assert_term(tt.le(x, tt.int_const(1)));
  s.assert_term(tt.ne(x, tt.int_const(0)));
  ASSERT_EQ(s.check(), SolveResult::kSat);
  EXPECT_EQ(s.model_int(x), 1);
}

TEST(IdlTest, WindowTooTightUnsat) {
  Solver s;
  auto& tt = s.terms();
  const TermId x = tt.int_var("x");
  s.assert_term(tt.ge(x, tt.int_const(0)));
  s.assert_term(tt.le(x, tt.int_const(1)));
  s.assert_term(tt.ne(x, tt.int_const(0)));
  s.assert_term(tt.ne(x, tt.int_const(1)));
  EXPECT_EQ(s.check(), SolveResult::kUnsat);
}

TEST(IdlTest, BooleanStructureOverAtoms) {
  Solver s;
  auto& tt = s.terms();
  const TermId x = tt.int_var("x");
  const TermId y = tt.int_var("y");
  // (x < y or y < x) and x = 3 and y = 3 is unsat; relaxing y works.
  s.assert_term(tt.or2(tt.lt(x, y), tt.lt(y, x)));
  s.assert_term(tt.eq(x, tt.int_const(3)));
  s.assert_term(tt.or2(tt.eq(y, tt.int_const(3)), tt.eq(y, tt.int_const(4))));
  ASSERT_EQ(s.check(), SolveResult::kSat);
  EXPECT_EQ(s.model_int(x), 3);
  EXPECT_EQ(s.model_int(y), 4);
}

TEST(IdlTest, NegatedAtomSemantics) {
  Solver s;
  auto& tt = s.terms();
  const TermId x = tt.int_var("x");
  const TermId y = tt.int_var("y");
  // not(x - y <= 2)  ==  x - y >= 3
  s.assert_term(tt.not_(tt.le(x, tt.add_const(y, 2))));
  ASSERT_EQ(s.check(), SolveResult::kSat);
  EXPECT_GE(s.model_int(x) - s.model_int(y), 3);
}

TEST(IdlTest, ManyVariableOrderingChain) {
  Solver s;
  auto& tt = s.terms();
  std::vector<TermId> v;
  for (int i = 0; i < 200; ++i) v.push_back(tt.int_var("v" + std::to_string(i)));
  for (int i = 0; i + 1 < 200; ++i) {
    s.assert_term(tt.lt(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i + 1)]));
  }
  ASSERT_EQ(s.check(), SolveResult::kSat);
  EXPECT_LE(s.model_int(v[0]) + 199, s.model_int(v[199]));
  // Close the loop: now a negative cycle exists.
  s.assert_term(tt.lt(v[199], v[0]));
  EXPECT_EQ(s.check(), SolveResult::kUnsat);
}

TEST(IdlTest, ModelSurvivesViaSnapshot) {
  Solver s;
  auto& tt = s.terms();
  const TermId x = tt.int_var("x");
  s.assert_term(tt.eq(x, tt.int_const(9)));
  ASSERT_EQ(s.check(), SolveResult::kSat);
  const std::vector<TermId> proj{x};
  const Model m = s.snapshot_ints(proj);
  EXPECT_EQ(m.int_value(x), 9);
}

TEST(IdlTest, TheoryStatsCount) {
  Solver s;
  auto& tt = s.terms();
  const TermId a = tt.int_var("a");
  const TermId b = tt.int_var("b");
  s.assert_term(tt.lt(a, b));
  s.assert_term(tt.lt(b, a));
  EXPECT_EQ(s.check(), SolveResult::kUnsat);
  EXPECT_GE(s.idl_stats().conflicts, 1u);
}

// --- Randomized conjunctions vs Bellman-Ford ----------------------------

struct DiffConstraint {
  unsigned x, y;
  std::int64_t k;  // x - y <= k
};

/// Bellman-Ford negative-cycle detection on the constraint graph
/// (edge y -> x with weight k per constraint).
bool feasible_ground_truth(unsigned n, const std::vector<DiffConstraint>& cs) {
  std::vector<std::int64_t> dist(n, 0);  // virtual source to all: 0
  for (unsigned pass = 0; pass + 1 < n + 1; ++pass) {
    bool changed = false;
    for (const auto& c : cs) {
      if (dist[c.y] + c.k < dist[c.x]) {
        dist[c.x] = dist[c.y] + c.k;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  for (const auto& c : cs) {
    if (dist[c.y] + c.k < dist[c.x]) return false;
  }
  return true;
}

class RandomIdlTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomIdlTest, ConjunctionAgreesWithBellmanFord) {
  support::Rng rng(GetParam());
  const unsigned n = 4 + static_cast<unsigned>(rng.below(5));
  const unsigned m = n * 2 + static_cast<unsigned>(rng.below(n * 2));
  std::vector<DiffConstraint> cs;
  for (unsigned i = 0; i < m; ++i) {
    DiffConstraint c;
    c.x = static_cast<unsigned>(rng.below(n));
    do {
      c.y = static_cast<unsigned>(rng.below(n));
    } while (c.y == c.x);
    c.k = rng.range(-4, 6);
    cs.push_back(c);
  }

  Solver s;
  auto& tt = s.terms();
  std::vector<TermId> vars;
  for (unsigned v = 0; v < n; ++v) vars.push_back(tt.int_var("r" + std::to_string(v)));
  for (const auto& c : cs) {
    s.assert_term(tt.le(vars[c.x], tt.add_const(vars[c.y], c.k)));
  }
  const bool expected = feasible_ground_truth(n, cs);
  const SolveResult got = s.check();
  EXPECT_EQ(got == SolveResult::kSat, expected) << "seed=" << GetParam();
  if (got == SolveResult::kSat) {
    // The arithmetic model must satisfy every constraint literally.
    for (const auto& c : cs) {
      EXPECT_LE(s.model_int(vars[c.x]) - s.model_int(vars[c.y]), c.k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIdlTest,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace mcsym::smt
