// Tests for the MCAPI-style C API facade: status discipline, address space,
// and end-to-end equivalence with the builder DSL on the paper's example.
#include <gtest/gtest.h>

#include "check/symbolic_checker.hpp"
#include "check/workloads.hpp"
#include "mcapi/capi.hpp"
#include "mcapi/executor.hpp"
#include "trace/trace.hpp"

namespace mcsym::mcapi::capi {
namespace {

using S = mcapi_status_t;

TEST(CapiTest, InitializeOncePerNode) {
  VirtualTarget target;
  S status;
  NodeSession* a = target.initialize(0, 0, &status);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(status, S::MCAPI_SUCCESS);
  NodeSession* again = target.initialize(0, 0, &status);
  EXPECT_EQ(again, nullptr);
  EXPECT_EQ(status, S::MCAPI_ERR_NODE_INITIALIZED);
}

TEST(CapiTest, WrongDomainRejected) {
  VirtualTarget target(/*domain=*/1);
  S status;
  EXPECT_EQ(target.initialize(9, 0, &status), nullptr);
  EXPECT_EQ(status, S::MCAPI_ERR_PARAMETER);
}

TEST(CapiTest, EndpointCreateAndGet) {
  VirtualTarget target;
  S status;
  NodeSession* n0 = target.initialize(0, 0, &status);
  NodeSession* n1 = target.initialize(0, 1, &status);
  const mcapi_endpoint_t e0 = n0->endpoint_create(5, &status);
  EXPECT_EQ(status, S::MCAPI_SUCCESS);
  EXPECT_TRUE(e0.valid());

  // Duplicate port on the same node.
  (void)n0->endpoint_create(5, &status);
  EXPECT_EQ(status, S::MCAPI_ERR_ENDP_EXISTS);

  // The other node can address it; unknown ports cannot be resolved.
  const mcapi_endpoint_t seen = n1->endpoint_get(0, 0, 5, &status);
  EXPECT_EQ(status, S::MCAPI_SUCCESS);
  EXPECT_EQ(seen.ref, e0.ref);
  (void)n1->endpoint_get(0, 0, 99, &status);
  EXPECT_EQ(status, S::MCAPI_ERR_PORT_INVALID);
}

TEST(CapiTest, SendOwnershipEnforced) {
  VirtualTarget target;
  S status;
  NodeSession* n0 = target.initialize(0, 0, &status);
  NodeSession* n1 = target.initialize(0, 1, &status);
  const mcapi_endpoint_t e0 = n0->endpoint_create(0, &status);
  const mcapi_endpoint_t e1 = n1->endpoint_create(0, &status);

  n1->msg_send(e0, e1, 7, 0, &status);  // n1 does not own e0
  EXPECT_EQ(status, S::MCAPI_ERR_ENDP_NOTOWNER);
  n1->msg_send(e1, e0, 7, 0, &status);
  EXPECT_EQ(status, S::MCAPI_SUCCESS);
  n0->msg_recv(e1, "x", &status);  // n0 does not own e1
  EXPECT_EQ(status, S::MCAPI_ERR_ENDP_NOTOWNER);
  n0->msg_recv(e0, "x", &status);
  EXPECT_EQ(status, S::MCAPI_SUCCESS);
}

TEST(CapiTest, RequestLifecycle) {
  VirtualTarget target;
  S status;
  NodeSession* n0 = target.initialize(0, 0, &status);
  const mcapi_endpoint_t e0 = n0->endpoint_create(0, &status);

  mcapi_request_t req;
  n0->wait(&req, &status);  // never issued
  EXPECT_EQ(status, S::MCAPI_ERR_REQUEST_INVALID);

  n0->msg_recv_i(e0, "x", &req, &status);
  ASSERT_EQ(status, S::MCAPI_SUCCESS);
  ASSERT_TRUE(req.valid());
  mcapi_request_t copy = req;
  n0->wait(&req, &status);
  EXPECT_EQ(status, S::MCAPI_SUCCESS);
  EXPECT_FALSE(req.valid());  // handle consumed
  n0->wait(&copy, &status);   // double wait on the same request
  EXPECT_EQ(status, S::MCAPI_ERR_REQUEST_INVALID);
}

TEST(CapiTest, NullRequestIsParameterError) {
  VirtualTarget target;
  S status;
  NodeSession* n0 = target.initialize(0, 0, &status);
  const mcapi_endpoint_t e0 = n0->endpoint_create(0, &status);
  n0->msg_recv_i(e0, "x", nullptr, &status);
  EXPECT_EQ(status, S::MCAPI_ERR_PARAMETER);
}

TEST(CapiTest, StatusNamesReadable) {
  EXPECT_STREQ(mcapi_status_name(S::MCAPI_SUCCESS), "MCAPI_SUCCESS");
  EXPECT_STREQ(mcapi_status_name(S::MCAPI_ERR_ENDP_NOTOWNER),
               "MCAPI_ERR_ENDP_NOTOWNER");
}

/// The paper's Figure 1, written against the C-style API, must produce a
/// program equivalent to the builder version: same 2-matching enumeration.
TEST(CapiTest, Figure1ThroughCapiMatchesBuilderVersion) {
  VirtualTarget target;
  S status;
  NodeSession* t0 = target.initialize(0, 0, &status);
  NodeSession* t1 = target.initialize(0, 1, &status);
  NodeSession* t2 = target.initialize(0, 2, &status);

  const mcapi_endpoint_t e0 = t0->endpoint_create(0, &status);
  const mcapi_endpoint_t e1 = t1->endpoint_create(0, &status);
  const mcapi_endpoint_t e2 = t2->endpoint_create(0, &status);

  t0->msg_recv(e0, "A", &status);
  ASSERT_EQ(status, S::MCAPI_SUCCESS);
  t0->msg_recv(e0, "B", &status);
  t1->msg_recv(e1, "C", &status);
  t1->msg_send(e1, t1->endpoint_get(0, 0, 0, &status), 10, 0, &status);
  t2->msg_send(e2, e0, 20, 0, &status);
  t2->msg_send(e2, e1, 30, 0, &status);
  ASSERT_EQ(status, S::MCAPI_SUCCESS);

  const Program program = target.finalize();
  ASSERT_TRUE(program.finalized());
  EXPECT_EQ(program.num_threads(), 3u);
  EXPECT_EQ(program.num_endpoints(), 3u);

  System sys(program);
  trace::Trace tr(program);
  trace::Recorder rec(tr);
  RandomScheduler sched(1);
  ASSERT_TRUE(run(sys, sched, &rec).completed());

  check::SymbolicChecker checker(tr);
  EXPECT_EQ(checker.enumerate_matchings().matchings.size(), 2u);
}

/// Non-blocking gather through the C API runs and analyzes end to end.
TEST(CapiTest, NonblockingThroughCapi) {
  VirtualTarget target;
  S status;
  NodeSession* rx = target.initialize(0, 0, &status);
  NodeSession* tx = target.initialize(0, 1, &status);
  const mcapi_endpoint_t in = rx->endpoint_create(0, &status);
  const mcapi_endpoint_t out = tx->endpoint_create(0, &status);

  mcapi_request_t r0;
  mcapi_request_t r1;
  rx->msg_recv_i(in, "x0", &r0, &status);
  rx->msg_recv_i(in, "x1", &r1, &status);
  rx->wait(&r0, &status);
  rx->wait(&r1, &status);
  tx->msg_send(out, in, 1, 0, &status);
  tx->msg_send(out, in, 2, 0, &status);

  const Program program = target.finalize();
  System sys(program);
  trace::Trace tr(program);
  trace::Recorder rec(tr);
  RoundRobinScheduler sched;
  ASSERT_TRUE(run(sys, sched, &rec).completed());
  check::SymbolicChecker checker(tr);
  // Single FIFO channel: exactly one feasible matching.
  EXPECT_EQ(checker.enumerate_matchings().matchings.size(), 1u);
}

}  // namespace
}  // namespace mcsym::mcapi::capi
