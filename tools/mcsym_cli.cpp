// mcsym — command-line front end for the full pipeline of the paper:
//
//   run one execution of an MCAPI program, record its trace, generate the
//   match-pair sets, encode P = POrder ∧ PMatchPairs ∧ PUnique ∧ ¬PProp ∧
//   PEvents, hand it to the SMT solver, and read the verdict / witness /
//   full pairing enumeration back out.
//
// Programs come in as `.mcp` text (see src/text/program_text.hpp for the
// grammar). Subcommands:
//
//   mcsym run FILE        execute once on the simulated runtime
//   mcsym trace FILE      print the recorded trace, one event per line
//   mcsym verify FILE     one-stop verification through the Verifier facade
//                         (--engine selects symbolic/explicit/dpor/portfolio)
//   mcsym verify --batch MANIFEST
//                         verify every .mcp listed in MANIFEST through one
//                         VerifierService (shared verdict cache), emitting a
//                         JSON envelope line per entry
//   mcsym serve           long-running stdio request loop over the same
//                         service (see the protocol note above cmd_serve)
//   mcsym check FILE      verify safety properties symbolically
//   mcsym enumerate FILE  enumerate every feasible send/receive pairing
//   mcsym smt FILE        emit the SMT problem as SMT-LIB2 text
//   mcsym fmt FILE        reprint the program in canonical form
//
// `check` and `enumerate` are thin wrappers over the same
// check::Verifier facade `verify` drives; the facade owns trace
// recording, engine plumbing, witness replay, and cross-checking.
//
// Exit codes: 0 = success / verified safe; 1 = a violation or deadlock is
// reachable; 2 = usage or input error; 3 = budget exhausted / no verdict;
// 4 = non-termination (--stateful: a non-progressive cycle is realized).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/diagnose.hpp"
#include "check/service.hpp"
#include "check/verifier.hpp"
#include "mcapi/executor.hpp"
#include "smt/smtlib.hpp"
#include "smt/smtlib_parser.hpp"
#include "text/program_text.hpp"
#include "trace/trace.hpp"

namespace {

using mcsym::check::SymbolicOptions;
using mcsym::check::Verifier;
using mcsym::check::VerifierService;
using mcsym::text::ParseOutcome;

/// Maps a --workers value to a thread count: "auto" or "0" resolve to the
/// machine's hardware concurrency (1 when the runtime can't report it),
/// anything else parses as a number. Clamped to [1, 64] — the schedulers
/// degrade, not break, beyond physical cores, and the cap keeps a stray
/// huge value from oversubscribing the host. The resolved count is what the
/// Verifier request carries, so the parallel EngineRun row echoes it.
std::uint32_t resolve_workers(const std::string& value) {
  std::uint32_t n = 0;
  if (value != "auto") {
    n = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
  }
  if (n == 0) n = std::thread::hardware_concurrency();  // "auto"/"0"/garbage
  return std::clamp(n, 1u, 64u);
}

constexpr const char* kUsage = R"(usage: mcsym COMMAND FILE.mcp [options]
       mcsym verify --batch MANIFEST [options]
       mcsym serve [options]

commands:
  run        execute the program once on the simulated MCAPI runtime
  trace      record one execution and print its trace text
  verify     answer "can any execution violate a property or deadlock?"
             with a selectable engine (see --engine) and budgets
  serve      read verification requests from stdin in a loop, sharing one
             verdict cache across them; replies are JSON envelope lines
             (protocol: `verify [k=v ...]` then program text then `.`;
             also `stats` and `quit`)
  check      decide whether any execution consistent with the recorded
             trace violates a property (the paper's SMT pipeline)
  enumerate  enumerate every feasible send/receive pairing of the trace
  diagnose   explain whether proposed --pair bindings are jointly feasible
  smt        print the SMT problem (SMT-LIB2) for the recorded trace
  solve      run the built-in CDCL+IDL solver on an SMT-LIB2 file
  fmt        parse and reprint the program in canonical form

verify options:
  --engine NAME        symbolic | explicit | dpor | dpor-sleepset | portfolio
                       (default dpor; --engine=NAME also accepted)
  --json               print the machine-readable report (mcsym.verify/1)
  --batch              FILE is a manifest of .mcp paths (one per line, `#`
                       comments); every entry is verified through one
                       shared service and emits a mcsym.batch/1 envelope
                       line (with --json followed by the full report);
                       exit is the worst entry (2 > 1 > 4 > 3 > 0)
  --cache N            verdict-cache capacity for --batch / serve
                       (default 256); --no-cache disables caching
  --max-seconds S      joint wall-clock budget across all engines (default off)
  --max-states N       explicit-state budget (states expanded)
  --max-transitions N  DPOR budget (transitions executed)
  --conflicts N        CDCL conflict budget per solver query (default off)
  --traces N           traces to record and check (symbolic/portfolio, default 1)
  --stateful           visited-state matching + cycle detection for the
                       explicit/DPOR engines: looping programs terminate
                       with a definitive verdict, and a realized
                       non-progressive cycle reports non-termination
                       (exit 4) with a replayable lasso witness
  --state-capacity N   visited-store capacity in states for --stateful
                       (default 1048576; 0 = unbounded; eviction trades
                       re-exploration for bounded memory)
  --workers N          worker threads: work-stealing DPOR exploration,
                       sharded symbolic per-trace checks, concurrent
                       portfolio engines (default 1 = serial; verdicts are
                       identical at every worker count). N may be `auto`
                       or `0` to use all hardware threads (clamped to 64);
                       the resolved count is echoed in the parallel
                       engine row's counters

common options:
  --seed N             scheduler seed for the recorded execution (default 1)
  --round-robin        use the deterministic round-robin scheduler instead
  --property EXPR      extra end-of-run property, e.g. 't0.A == 20'
                       (repeatable; conjoined with in-program asserts)
  --precise            generate match pairs by precise DFS instead of the
                       endpoint over-approximation
  --no-fifo            drop MCAPI per-channel FIFO constraints (ablation)
  --delay-ignorant     Elwakil-Yang-style baseline encoding (delivery order
                       = issue order; misses Figure-4b behaviors)
  --assert-props       assert PProp instead of its negation (SAT = a fully
                       correct execution exists)
  --witness            print the decoded witness on SAT (check)
  --replay             re-execute the witness on the runtime and report the
                       outcome (check)
  --explicit           also run the explicit-state ground truth (enumerate)
  --mcc                also run the MCC-style global-FIFO baseline (enumerate)
  --pair 'tS:send#K -> tR:recv#J'
                       propose that thread tR's J-th receive takes thread
                       tS's K-th send (repeatable; ordinals as printed by
                       enumerate) (diagnose)
  -o FILE              write primary output to FILE instead of stdout

exit codes: 0 ok / verified safe; 1 violation or deadlock reachable
            (check: SAT); 2 usage or input error; 3 budget exhausted /
            no verdict (verify); 4 non-termination (verify --stateful)
)";

struct Options {
  std::string command;
  std::string file;
  std::uint64_t seed = 1;
  bool round_robin = false;
  std::vector<std::string> properties;
  bool precise = false;
  bool no_fifo = false;
  bool delay_ignorant = false;
  bool assert_props = false;
  bool witness = false;
  bool replay = false;
  bool with_explicit = false;
  bool with_mcc = false;
  std::vector<std::string> pairs;
  std::string out_path;
  // verify
  std::string engine = "dpor";
  bool json = false;
  double max_seconds = 0;
  std::uint64_t max_states = 0;       // 0 = facade default
  std::uint64_t max_transitions = 0;  // 0 = facade default
  std::uint64_t conflicts = 0;
  std::uint32_t traces = 1;
  std::uint32_t workers = 1;
  bool stateful = false;
  std::uint64_t state_capacity =
      mcsym::check::VisitedStateStore::kDefaultCapacity;  // 0 = unbounded
  bool batch = false;
  std::size_t cache_capacity = 256;  // --batch / serve verdict cache
  // serve per-request only (set from `k=v` header options, not flags):
  double timeout = 0;      // wall-clock seconds; cancels via the progress hook
  std::string request_id;  // echoed back in the reply envelope
};

int fail(const std::string& message) {
  std::cerr << "mcsym: " << message << "\n";
  return 2;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options o;
  if (argc < 2) return std::nullopt;
  o.command = argv[1];
  // `serve` reads programs from stdin and takes no FILE operand; every
  // other command requires one.
  int first = 2;
  if (o.command != "serve") {
    if (argc < 3) return std::nullopt;
    o.file = argv[2];
    first = 3;
  }
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--round-robin") {
      o.round_robin = true;
    } else if (a == "--property") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.properties.emplace_back(v);
    } else if (a == "--precise") {
      o.precise = true;
    } else if (a == "--no-fifo") {
      o.no_fifo = true;
    } else if (a == "--delay-ignorant") {
      o.delay_ignorant = true;
    } else if (a == "--assert-props") {
      o.assert_props = true;
    } else if (a == "--witness") {
      o.witness = true;
    } else if (a == "--replay") {
      o.replay = true;
    } else if (a == "--explicit") {
      o.with_explicit = true;
    } else if (a == "--mcc") {
      o.with_mcc = true;
    } else if (a == "--pair") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.pairs.emplace_back(v);
    } else if (a == "--engine") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.engine = v;
    } else if (a.rfind("--engine=", 0) == 0) {
      o.engine = a.substr(9);
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--batch") {
      o.batch = true;
    } else if (a == "--cache") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.cache_capacity = std::strtoull(v, nullptr, 10);
    } else if (a == "--no-cache") {
      o.cache_capacity = 0;
    } else if (a == "--max-seconds") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.max_seconds = std::strtod(v, nullptr);
    } else if (a == "--max-states") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.max_states = std::strtoull(v, nullptr, 10);
    } else if (a == "--max-transitions") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.max_transitions = std::strtoull(v, nullptr, 10);
    } else if (a == "--conflicts") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.conflicts = std::strtoull(v, nullptr, 10);
    } else if (a == "--traces") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.traces = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--workers") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.workers = resolve_workers(v);
    } else if (a == "--stateful") {
      o.stateful = true;
    } else if (a == "--state-capacity") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.stateful = true;  // capacity only means anything stateful
      o.state_capacity = std::strtoull(v, nullptr, 10);
    } else if (a == "-o") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      o.out_path = v;
    } else {
      std::cerr << "mcsym: unknown option '" << a << "'\n";
      return std::nullopt;
    }
  }
  return o;
}

/// Reads the whole file; nullopt (with message on stderr) when unreadable.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "mcsym: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

int write_output(const Options& o, const std::string& content) {
  if (o.out_path.empty()) {
    std::cout << content;
    return 0;
  }
  std::ofstream out(o.out_path, std::ios::binary);
  if (!out) return fail("cannot write '" + o.out_path + "'");
  out << content;
  return 0;
}

struct LoadedProgram {
  mcsym::text::ParsedProgram unit;
  std::vector<mcsym::encode::Property> properties;  // unit's + --property's
};

std::optional<LoadedProgram> load(const Options& o) {
  const auto source = slurp(o.file);
  if (!source) return std::nullopt;
  ParseOutcome out = mcsym::text::parse_program(*source);
  if (!out.ok()) {
    std::cerr << "mcsym: " << o.file << " has errors:\n" << out.error_text() << "\n";
    return std::nullopt;
  }
  LoadedProgram lp{std::move(*out.parsed), {}};
  lp.properties = lp.unit.properties;
  for (const std::string& text : o.properties) {
    auto prop = mcsym::text::parse_property(lp.unit.program, text);
    if (!prop.ok()) {
      std::cerr << "mcsym: bad --property '" << text << "':";
      for (const auto& d : prop.diagnostics) std::cerr << " " << d.message;
      std::cerr << "\n";
      return std::nullopt;
    }
    lp.properties.push_back(std::move(*prop.property));
  }
  return lp;
}

/// Executes once under the selected scheduler, recording into `trace`.
mcsym::mcapi::RunResult record(const Options& o, const mcsym::mcapi::Program& program,
                               mcsym::trace::Trace& trace) {
  mcsym::mcapi::System sys(program);
  mcsym::trace::Recorder rec(trace);
  if (o.round_robin) {
    mcsym::mcapi::RoundRobinScheduler sched;
    return mcsym::mcapi::run(sys, sched, &rec);
  }
  mcsym::mcapi::RandomScheduler sched(o.seed);
  return mcsym::mcapi::run(sys, sched, &rec);
}

const char* outcome_name(mcsym::mcapi::RunResult::Outcome oc) {
  using Outcome = mcsym::mcapi::RunResult::Outcome;
  switch (oc) {
    case Outcome::kHalted: return "halted";
    case Outcome::kViolation: return "assertion violation";
    case Outcome::kDeadlock: return "deadlock";
    case Outcome::kStepLimit: return "step limit";
  }
  return "?";
}

SymbolicOptions symbolic_options(const Options& o) {
  SymbolicOptions so;
  so.match_gen = o.precise ? mcsym::check::MatchGen::kPrecise
                           : mcsym::check::MatchGen::kOverapprox;
  so.encode.fifo_non_overtaking = !o.no_fifo;
  so.encode.delay_ignorant = o.delay_ignorant;
  if (o.assert_props) {
    so.encode.property_mode = mcsym::encode::PropertyMode::kAssert;
  }
  return so;
}

int cmd_run(const Options& o) {
  const auto lp = load(o);
  if (!lp) return 2;
  mcsym::trace::Trace trace(lp->unit.program);
  const auto result = record(o, lp->unit.program, trace);
  std::ostringstream report;
  report << "outcome: " << outcome_name(result.outcome) << " after " << result.steps
         << " steps; " << trace.size() << " events, " << trace.sends().size()
         << " sends, " << trace.receives().size() << " receives\n";
  const int rc = write_output(o, report.str());
  if (rc != 0) return rc;
  return result.outcome == mcsym::mcapi::RunResult::Outcome::kViolation ? 1 : 0;
}

int cmd_trace(const Options& o) {
  const auto lp = load(o);
  if (!lp) return 2;
  mcsym::trace::Trace trace(lp->unit.program);
  const auto result = record(o, lp->unit.program, trace);
  if (!result.completed() &&
      result.outcome != mcsym::mcapi::RunResult::Outcome::kViolation) {
    std::cerr << "mcsym: recorded execution did not complete ("
              << outcome_name(result.outcome) << ")\n";
  }
  return write_output(o, trace.to_text());
}

/// Maps a facade verdict to the documented exit-code contract:
/// 0 safe, 1 violation or deadlock, 3 budget exhausted / no verdict,
/// 4 non-termination (stateful mode).
int verdict_exit_code(mcsym::check::Verdict verdict) {
  switch (verdict) {
    case mcsym::check::Verdict::kSafe: return 0;
    case mcsym::check::Verdict::kViolation:
    case mcsym::check::Verdict::kDeadlock: return 1;
    case mcsym::check::Verdict::kNonTermination: return 4;
    case mcsym::check::Verdict::kBudgetExhausted:
    case mcsym::check::Verdict::kUnknown: return 3;
  }
  return 3;
}

/// Builds the VerifyRequest every verify-shaped command shares (engine,
/// budgets, trace plan, encoding knobs) from parsed options. Properties are
/// NOT set here — the single-file path resolves them against the loaded
/// program, the service paths pass them as source text. nullopt (with the
/// reason in *error) when the engine name is unknown.
std::optional<mcsym::check::VerifyRequest> request_from_options(
    const Options& o, std::string* error) {
  const auto engine = mcsym::check::engine_from_name(o.engine);
  if (!engine.has_value()) {
    *error = "unknown engine '" + o.engine +
             "' (symbolic, explicit, dpor, dpor-sleepset, portfolio)";
    return std::nullopt;
  }
  mcsym::check::VerifyRequest req;
  req.engine = *engine;
  req.budget.max_seconds = o.max_seconds;
  if (o.max_states != 0) req.budget.max_states = o.max_states;
  if (o.max_transitions != 0) req.budget.max_transitions = o.max_transitions;
  req.budget.solver_conflicts = o.conflicts;
  req.trace_seed = o.seed;
  req.round_robin = o.round_robin;
  req.traces = o.traces;
  req.workers = o.workers;
  req.stateful = o.stateful;
  req.state_capacity = static_cast<std::size_t>(o.state_capacity);
  req.symbolic = symbolic_options(o);
  if (o.timeout > 0) {
    // The per-request wall-clock limit rides the existing cancellation
    // path: the progress callback returns false once the limit passes and
    // the engines unwind to a kBudgetExhausted reply.
    req.progress = [limit = o.timeout](const mcsym::check::Progress& p) {
      return p.seconds <= limit;
    };
  }
  return req;
}

int cmd_verify(const Options& o) {
  std::string engine_error;
  auto maybe_req = request_from_options(o, &engine_error);
  if (!maybe_req) return fail(engine_error);
  const auto lp = load(o);
  if (!lp) return 2;

  mcsym::check::VerifyRequest req = std::move(*maybe_req);
  req.properties = lp->properties;

  Verifier verifier;
  const auto vr = verifier.verify(lp->unit.program, req);

  if (o.json) {
    const int rc = write_output(o, mcsym::check::report_to_json(vr));
    if (rc != 0) return rc;
    return verdict_exit_code(vr.verdict);
  }

  std::ostringstream report;
  report << "verdict: " << mcsym::check::verdict_name(vr.verdict);
  if (vr.cancelled) report << " (cancelled)";
  report << "\n";
  const auto& names = lp->unit.program.interner();
  for (const auto& v : vr.violations) {
    report << "violation: " << lp->unit.program.thread(v.thread).name << " op#"
           << v.op_index << ": " << mcsym::text::cond_to_text(v.cond, names)
           << "\n";
  }
  if (!vr.witness_schedule.empty()) {
    report << "witness schedule: " << vr.witness_schedule.size()
           << " actions (replayable)\n";
  }
  if (vr.verdict == mcsym::check::Verdict::kDeadlock ||
      !vr.deadlock_schedule.empty()) {
    report << "deadlock schedule: " << vr.deadlock_schedule.size()
           << " actions (replayable; 0 = the initial state deadlocks)\n";
  }
  if (vr.verdict == mcsym::check::Verdict::kNonTermination) {
    report << "non-termination lasso: " << vr.lasso_stem.size()
           << " stem + " << vr.lasso_cycle.size()
           << " cycle actions (replay the stem, then the cycle returns to "
              "the same state with no message matched)\n";
  }
  for (const auto& run : vr.engines) {
    report << "engine " << mcsym::check::engine_name(run.engine) << ": "
           << mcsym::check::verdict_name(run.verdict)
           << (run.truncated ? " (truncated)" : "") << ";";
    for (const auto& [key, value] : run.counters) {
      report << " " << key << "=" << value;
    }
    report << "\n";
  }
  for (const auto& d : vr.disagreements) {
    report << "disagreement: " << d << "\n";
  }
  const int rc = write_output(o, report.str());
  if (rc != 0) return rc;
  return verdict_exit_code(vr.verdict);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", seconds);
  return buf;
}

/// The shared tail of a batch/serve reply envelope: request outcome plus
/// the service's cumulative cache counters. The envelope is service-level
/// bookkeeping; the mcsym.verify/1 report (when requested) follows
/// separately and is byte-identical across cache hits.
void append_reply_fields(std::ostringstream& os,
                         const VerifierService::Reply& reply,
                         const VerifierService::Stats& stats) {
  os << "\"ok\":" << (reply.ok ? "true" : "false");
  if (!reply.ok) {
    os << ",\"error\":\"" << json_escape(reply.error) << "\"";
  } else {
    os << ",\"name\":\"" << json_escape(reply.name) << "\""
       << ",\"verdict\":\"" << mcsym::check::verdict_name(reply.verdict)
       << "\"";
    if (reply.cancelled) os << ",\"cancelled\":true";
  }
  os << ",\"exit\":" << reply.exit_code
     << ",\"cache_hit\":" << (reply.cache_hit ? "true" : "false")
     << ",\"cache_hits\":" << stats.cache_hits
     << ",\"cache_misses\":" << stats.cache_misses
     << ",\"seconds\":" << format_seconds(reply.seconds);
}

/// Worst-exit precedence for batch mode: usage/input errors dominate, then
/// findings (violations/deadlocks, then non-termination), then exhausted
/// budgets, then clean safes.
int combine_exit(int a, int b) {
  auto rank = [](int code) {
    switch (code) {
      case 2: return 4;
      case 1: return 3;
      case 4: return 2;
      case 3: return 1;
      default: return 0;
    }
  };
  return rank(a) >= rank(b) ? a : b;
}

int cmd_verify_batch(const Options& o) {
  std::string engine_error;
  const auto maybe_req = request_from_options(o, &engine_error);
  if (!maybe_req) return fail(engine_error);
  const auto manifest = slurp(o.file);
  if (!manifest) return 2;

  VerifierService service({o.cache_capacity});
  std::ostringstream out;
  int exit_code = 0;
  std::size_t entries = 0;
  std::istringstream lines(*manifest);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    const auto stop = line.find_last_not_of(" \t");
    const std::string path = line.substr(start, stop - start + 1);
    if (path.front() == '#') continue;
    ++entries;

    std::ostringstream env;
    env << "{\"schema\":\"mcsym.batch/1\",\"file\":\"" << json_escape(path)
        << "\",";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      VerifierService::Reply unreadable;
      unreadable.error = "cannot open '" + path + "'";
      append_reply_fields(env, unreadable, service.stats());
      env << "}\n";
      out << env.str();
      exit_code = combine_exit(exit_code, 2);
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const VerifierService::Reply reply =
        service.verify_source(ss.str(), *maybe_req, o.properties);
    append_reply_fields(env, reply, service.stats());
    env << "}\n";
    out << env.str();
    if (o.json && !reply.report_json.empty()) {
      out << reply.report_json;
      if (reply.report_json.back() != '\n') out << "\n";
    }
    exit_code = combine_exit(exit_code, reply.exit_code);
  }

  const VerifierService::Stats& stats = service.stats();
  out << "{\"schema\":\"mcsym.batch/1\",\"summary\":true,\"entries\":"
      << entries << ",\"requests\":" << stats.requests
      << ",\"parse_errors\":" << stats.parse_errors
      << ",\"cache_hits\":" << stats.cache_hits
      << ",\"cache_misses\":" << stats.cache_misses
      << ",\"exit\":" << exit_code << "}\n";
  const int rc = write_output(o, out.str());
  if (rc != 0) return rc;
  return exit_code;
}

// Serve protocol (line-oriented over stdio, one service for the whole
// session so the verdict cache accumulates across requests):
//
//   verify [k=v ...]      header; the program text follows, terminated by a
//     <.mcp lines>        line containing only "."
//     .
//   stats                 report cumulative service counters
//   quit                  exit 0 (as does EOF)
//
// Header options override this process's command-line defaults per request:
// engine, seed, traces, workers, round-robin (0/1), stateful (0/1),
// state-capacity, max-seconds, max-states, max-transitions, conflicts,
// timeout (wall-clock seconds, cancels via the progress callback), json
// (0/1: append the mcsym.verify/1 report), and id (echoed in the reply).
// Values cannot contain spaces; properties belong in the program text.
//
// Every reply is one mcsym.serve/1 envelope line, then (json=1, ok) the
// report document, then a line containing only ".". Malformed headers,
// unparseable programs, and exhausted budgets all produce an error or
// exit=3 reply and the loop continues — the server only exits on EOF/quit.
int cmd_serve(const Options& o) {
  VerifierService service({o.cache_capacity});
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream header(line);
    std::string command;
    header >> command;
    if (command.empty()) continue;
    if (command == "quit") return 0;

    if (command == "stats") {
      const VerifierService::Stats& s = service.stats();
      std::cout << "{\"schema\":\"mcsym.serve/1\",\"stats\":true,\"requests\":"
                << s.requests << ",\"parse_errors\":" << s.parse_errors
                << ",\"cache_hits\":" << s.cache_hits
                << ",\"cache_misses\":" << s.cache_misses
                << ",\"cache_stores\":" << s.cache_stores
                << ",\"cache_evictions\":" << s.cache_evictions
                << ",\"cache_size\":" << service.cache_size() << "}\n.\n"
                << std::flush;
      continue;
    }

    auto error_reply = [&](const std::string& id, const std::string& message) {
      std::cout << "{\"schema\":\"mcsym.serve/1\",";
      if (!id.empty()) std::cout << "\"id\":\"" << json_escape(id) << "\",";
      std::cout << "\"ok\":false,\"error\":\"" << json_escape(message)
                << "\",\"exit\":2}\n.\n"
                << std::flush;
    };

    if (command != "verify") {
      error_reply("", "unknown command '" + command + "'");
      continue;
    }

    // Per-request options start from this process's defaults.
    Options ro = o;
    std::string opt_error;
    std::string token;
    while (header >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        opt_error = "malformed option '" + token + "' (expected k=v)";
        break;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "engine") {
        ro.engine = value;
      } else if (key == "seed") {
        ro.seed = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "traces") {
        ro.traces = static_cast<std::uint32_t>(
            std::strtoul(value.c_str(), nullptr, 10));
      } else if (key == "workers") {
        ro.workers = resolve_workers(value);
      } else if (key == "round-robin") {
        ro.round_robin = value != "0";
      } else if (key == "stateful") {
        ro.stateful = value != "0";
      } else if (key == "state-capacity") {
        ro.stateful = true;
        ro.state_capacity = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "max-seconds") {
        ro.max_seconds = std::strtod(value.c_str(), nullptr);
      } else if (key == "max-states") {
        ro.max_states = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "max-transitions") {
        ro.max_transitions = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "conflicts") {
        ro.conflicts = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "timeout") {
        ro.timeout = std::strtod(value.c_str(), nullptr);
      } else if (key == "json") {
        ro.json = value != "0";
      } else if (key == "id") {
        ro.request_id = value;
      } else {
        opt_error = "unknown option '" + key + "'";
        break;
      }
    }

    // Consume the program body even when the header was bad, so the stream
    // stays framed on the next request.
    std::string body;
    bool terminated = false;
    while (std::getline(std::cin, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line == ".") {
        terminated = true;
        break;
      }
      body += line;
      body += '\n';
    }
    if (!terminated) {
      error_reply(ro.request_id, "unexpected EOF inside a request body");
      return 0;
    }
    if (!opt_error.empty()) {
      error_reply(ro.request_id, opt_error);
      continue;
    }
    std::string engine_error;
    const auto req = request_from_options(ro, &engine_error);
    if (!req) {
      error_reply(ro.request_id, engine_error);
      continue;
    }

    const VerifierService::Reply reply =
        service.verify_source(body, *req, ro.properties);
    std::ostringstream env;
    env << "{\"schema\":\"mcsym.serve/1\",";
    if (!ro.request_id.empty()) {
      env << "\"id\":\"" << json_escape(ro.request_id) << "\",";
    }
    append_reply_fields(env, reply, service.stats());
    env << "}\n";
    std::cout << env.str();
    if (ro.json && reply.ok && !reply.report_json.empty()) {
      std::cout << reply.report_json;
      if (reply.report_json.back() != '\n') std::cout << "\n";
    }
    std::cout << ".\n" << std::flush;
  }
  return 0;
}

int cmd_check(const Options& o) {
  const auto lp = load(o);
  if (!lp) return 2;

  // Thin wrapper over the Verifier facade's symbolic engine: the facade
  // records the trace, runs the SMT pipeline, and (with --replay) replays
  // the witness; this command just formats the raw per-trace result.
  mcsym::check::VerifyRequest req;
  req.engine = mcsym::check::Engine::kSymbolic;
  req.trace_seed = o.seed;
  req.round_robin = o.round_robin;
  req.symbolic = symbolic_options(o);
  req.properties = lp->properties;
  req.replay_witnesses = o.replay;

  Verifier verifier;
  const auto vr = verifier.verify(lp->unit.program, req);
  if (vr.trace_checks.empty()) {
    return fail("recorded execution did not produce a trace");
  }
  const auto& tc = vr.trace_checks.front();
  if (!tc.checked) {
    // The recording itself ended the story before a symbolic query made
    // sense; report what happened instead of a bogus verdict.
    using Outcome = mcsym::mcapi::RunResult::Outcome;
    if (tc.recorded == Outcome::kDeadlock) {
      const int rc = write_output(
          o, "deadlock: the recorded execution deadlocked; its trace is a "
             "prefix artifact, not a checkable one (use `mcsym verify` for "
             "a whole-program verdict)\n");
      return rc != 0 ? rc : 1;
    }
    if (tc.recorded == Outcome::kStepLimit) {
      return fail("recorded execution hit the step limit");
    }
    return fail("recorded execution left a structurally incomplete trace "
                "(the violation stopped it mid-request); try another --seed");
  }
  const auto& verdict = tc.verdict;
  const auto& trace = tc.trace;

  std::ostringstream report;
  switch (verdict.result) {
    case mcsym::smt::SolveResult::kSat:
      report << (o.assert_props ? "SAT: a fully correct execution exists"
                                : "SAT: a property violation is reachable")
             << "\n";
      break;
    case mcsym::smt::SolveResult::kUnsat:
      report << (o.assert_props ? "UNSAT: no fully correct execution"
                                : "UNSAT: no execution of this trace violates the "
                                  "properties")
             << "\n";
      break;
    case mcsym::smt::SolveResult::kUnknown:
      report << "UNKNOWN: solver budget exhausted\n";
      break;
  }
  report << "stats: " << verdict.encode_stats.clock_vars << " clocks, "
         << verdict.encode_stats.id_vars << " match ids, "
         << verdict.encode_stats.match_disjuncts << " match disjuncts, "
         << verdict.sat_conflicts << " conflicts, " << verdict.sat_decisions
         << " decisions\n";

  if (verdict.witness.has_value() && o.witness) {
    report << "\n" << verdict.witness->to_string(trace);
  }
  if (verdict.witness.has_value() && o.replay) {
    // The facade already replayed the witness (continue-past-violation, so
    // the whole modeled execution was realized, not just the prefix).
    if (!tc.replay.has_value()) {
      report << "replay: FAILED to realize the witness (encoding bug?)\n";
    } else {
      report << "replay: witness realized in " << tc.replay->script.size()
             << " steps; in-program asserts "
             << (tc.replay->violation ? "fired" : "held");
      if (tc.replay->violations.size() > 1) {
        report << " (" << tc.replay->violations.size()
               << " violations along this execution)";
      }
      if (!verdict.witness->violated.empty()) {
        report << "; end-of-run properties violated as listed above";
      }
      report << "\n";
    }
  }
  const int rc = write_output(o, report.str());
  if (rc != 0) return rc;
  return verdict.result == mcsym::smt::SolveResult::kSat ? 1 : 0;
}

int cmd_enumerate(const Options& o) {
  const auto lp = load(o);
  if (!lp) return 2;

  // Thin wrapper over the Verifier facade's enumeration: trace recording,
  // the symbolic Figure-4 pipeline, and the optional explicit / MCC
  // cross-checks all live there now.
  mcsym::check::EnumerateRequest er;
  er.trace_seed = o.seed;
  er.round_robin = o.round_robin;
  er.symbolic = symbolic_options(o);
  er.with_explicit = o.with_explicit;
  er.with_mcc = o.with_mcc;

  Verifier verifier;
  const auto en = verifier.enumerate(lp->unit.program, er);
  const auto& enumeration = en.symbolic;
  const auto& trace = en.trace;

  std::ostringstream report;
  report << enumeration.matchings.size() << " feasible pairing(s)"
         << (enumeration.truncated ? " (truncated)" : "") << ", "
         << enumeration.solver_calls << " solver calls\n";
  std::size_t index = 1;
  for (const auto& matching : enumeration.matchings) {
    report << "pairing " << index++ << ":\n";
    for (const auto& [recv, send] : matching) {
      const auto& r = trace.event(recv).ev;
      const auto& s = trace.event(send).ev;
      report << "  " << lp->unit.program.thread(s.thread).name << ":send#"
             << s.op_index << " (value " << s.value << ") -> "
             << lp->unit.program.thread(r.thread).name << ":recv#" << r.op_index
             << "\n";
    }
  }

  if (en.explicit_truth.has_value()) {
    const auto& truth = *en.explicit_truth;
    report << "explicit-state ground truth: " << truth.matchings.size()
           << " pairing(s)" << (truth.truncated ? " (truncated)" : "")
           << (truth.matchings == enumeration.matchings ? " — agrees"
                                                        : " — MISMATCH")
           << "\n";
  }
  if (en.mcc.has_value()) {
    const auto& restricted = *en.mcc;
    report << "MCC-style baseline (no delay nondeterminism): "
           << restricted.matchings.size() << " pairing(s)";
    if (restricted.matchings.size() < enumeration.matchings.size()) {
      report << " — misses "
             << enumeration.matchings.size() - restricted.matchings.size()
             << " behavior(s) (the Figure-4b gap)";
    }
    report << "\n";
  }
  return write_output(o, report.str());
}

/// Parses "tS:send#K -> tR:recv#J" (or the reversed "tR:recv#J <- tS:send#K")
/// into trace event indices.
std::optional<mcsym::check::PairProposal> parse_pair(
    const std::string& text, const mcsym::mcapi::Program& program,
    const mcsym::trace::Trace& trace) {
  auto bad = [&](const std::string& why) -> std::optional<mcsym::check::PairProposal> {
    std::cerr << "mcsym: bad --pair '" << text << "': " << why << "\n";
    return std::nullopt;
  };

  std::string lhs;
  std::string rhs;
  bool lhs_is_send = true;
  if (const auto arrow = text.find("->"); arrow != std::string::npos) {
    lhs = text.substr(0, arrow);
    rhs = text.substr(arrow + 2);
  } else if (const auto rev = text.find("<-"); rev != std::string::npos) {
    lhs = text.substr(0, rev);
    rhs = text.substr(rev + 2);
    lhs_is_send = false;
  } else {
    return bad("expected 'tS:send#K -> tR:recv#J'");
  }

  // "thread:kind#ordinal"
  auto parse_ref = [&](std::string s, bool expect_send,
                       mcsym::trace::EventIndex& out) -> bool {
    // Trim.
    while (!s.empty() && s.front() == ' ') s.erase(s.begin());
    while (!s.empty() && s.back() == ' ') s.pop_back();
    const auto colon = s.find(':');
    const auto hash = s.find('#');
    if (colon == std::string::npos || hash == std::string::npos || hash < colon) {
      std::cerr << "mcsym: bad --pair '" << text << "': malformed endpoint '" << s
                << "'\n";
      return false;
    }
    const std::string thread_name = s.substr(0, colon);
    const std::string kind = s.substr(colon + 1, hash - colon - 1);
    const std::uint32_t ordinal =
        static_cast<std::uint32_t>(std::strtoul(s.c_str() + hash + 1, nullptr, 10));
    if (kind != (expect_send ? "send" : "recv")) {
      std::cerr << "mcsym: bad --pair '" << text << "': expected '"
                << (expect_send ? "send" : "recv") << "', got '" << kind << "'\n";
      return false;
    }
    for (mcsym::mcapi::ThreadRef t = 0; t < program.num_threads(); ++t) {
      if (program.thread(t).name != thread_name) continue;
      const mcsym::trace::EventIndex ev = trace.find(t, ordinal);
      if (ev == mcsym::trace::kNoEvent) {
        std::cerr << "mcsym: bad --pair '" << text << "': no event '" << s
                  << "' in the trace\n";
        return false;
      }
      using Kind = mcsym::mcapi::ExecEvent::Kind;
      const Kind k = trace.event(ev).ev.kind;
      const bool ok_kind = expect_send
                               ? k == Kind::kSend
                               : (k == Kind::kRecv || k == Kind::kRecvIssue);
      if (!ok_kind) {
        std::cerr << "mcsym: bad --pair '" << text << "': '" << s << "' is not a "
                  << (expect_send ? "send" : "receive") << " event\n";
        return false;
      }
      out = ev;
      return true;
    }
    std::cerr << "mcsym: bad --pair '" << text << "': unknown thread '"
              << thread_name << "'\n";
    return false;
  };

  mcsym::check::PairProposal p;
  const std::string& send_text = lhs_is_send ? lhs : rhs;
  const std::string& recv_text = lhs_is_send ? rhs : lhs;
  if (!parse_ref(send_text, /*expect_send=*/true, p.send)) return std::nullopt;
  if (!parse_ref(recv_text, /*expect_send=*/false, p.recv)) return std::nullopt;
  return p;
}

int cmd_diagnose(const Options& o) {
  const auto lp = load(o);
  if (!lp) return 2;
  if (o.pairs.empty()) return fail("diagnose needs at least one --pair");
  mcsym::trace::Trace trace(lp->unit.program);
  (void)record(o, lp->unit.program, trace);

  std::vector<mcsym::check::PairProposal> proposals;
  for (const std::string& text : o.pairs) {
    const auto p = parse_pair(text, lp->unit.program, trace);
    if (!p) return 2;
    proposals.push_back(*p);
  }

  mcsym::check::DiagnoseOptions dopts;
  dopts.encode = symbolic_options(o).encode;
  const mcsym::check::Diagnosis d =
      mcsym::check::diagnose_pairing(trace, proposals, dopts);

  std::ostringstream report;
  auto pair_name = [&](const mcsym::check::PairProposal& p) {
    const auto& s = trace.event(p.send).ev;
    const auto& r = trace.event(p.recv).ev;
    return lp->unit.program.thread(s.thread).name + ":send#" +
           std::to_string(s.op_index) + " -> " +
           lp->unit.program.thread(r.thread).name + ":recv#" +
           std::to_string(r.op_index);
  };
  if (d.feasible) {
    report << "feasible: some execution realizes every proposed pair\n";
    if (d.witness) report << "\n" << d.witness->to_string(trace);
  } else {
    report << "infeasible: no execution realizes the proposed pairs together\n";
    if (!d.blamed_pairs.empty()) {
      report << "conflicting pairs:\n";
      for (const auto& p : d.blamed_pairs) report << "  " << pair_name(p) << "\n";
    }
    if (!d.blamed_groups.empty()) {
      report << "violated constraint groups:";
      for (const auto& g : d.blamed_groups) report << " " << g;
      report << "\n";
    }
  }
  const int rc = write_output(o, report.str());
  if (rc != 0) return rc;
  return d.feasible ? 0 : 1;
}

int cmd_smt(const Options& o) {
  const auto lp = load(o);
  if (!lp) return 2;
  mcsym::trace::Trace trace(lp->unit.program);
  (void)record(o, lp->unit.program, trace);

  // Build the encoding exactly as `check` would, then print the assertions.
  const SymbolicOptions so = symbolic_options(o);
  const mcsym::match::MatchSet matches =
      so.match_gen == mcsym::check::MatchGen::kPrecise
          ? mcsym::match::enumerate_feasible(trace).precise
          : mcsym::match::generate_overapprox(trace);
  mcsym::smt::Solver solver;
  mcsym::encode::Encoder encoder(solver, trace, matches, so.encode);
  (void)encoder.encode(lp->properties);
  return write_output(o, mcsym::smt::to_smtlib(solver.terms(), solver.assertions()));
}

int cmd_solve(const Options& o) {
  const auto source = slurp(o.file);
  if (!source) return 2;
  mcsym::smt::Solver solver;
  const auto parsed = mcsym::smt::parse_smtlib(solver.terms(), *source);
  if (!parsed.ok()) {
    std::cerr << "mcsym: " << o.file << ": " << parsed.error << "\n";
    return 2;
  }
  for (const mcsym::smt::TermId t : parsed.script->assertions) {
    solver.assert_term(t);
  }
  const mcsym::smt::SolveResult result = solver.check();
  std::ostringstream report;
  switch (result) {
    case mcsym::smt::SolveResult::kSat: {
      report << "sat\n";
      // Mirror (get-model) for the declared integers, which is what the
      // encoder's problems quantify over.
      for (const mcsym::smt::TermId t : parsed.script->declared_ints) {
        report << "  " << solver.terms().var_name(t) << " = "
               << solver.model_int(t) << "\n";
      }
      break;
    }
    case mcsym::smt::SolveResult::kUnsat: report << "unsat\n"; break;
    case mcsym::smt::SolveResult::kUnknown: report << "unknown\n"; break;
  }
  const int rc = write_output(o, report.str());
  if (rc != 0) return rc;
  return result == mcsym::smt::SolveResult::kSat ? 1 : 0;
}

int cmd_fmt(const Options& o) {
  const auto source = slurp(o.file);
  if (!source) return 2;
  ParseOutcome out = mcsym::text::parse_program(*source);
  if (!out.ok()) {
    std::cerr << "mcsym: " << o.file << " has errors:\n" << out.error_text() << "\n";
    return 2;
  }
  return write_output(o, mcsym::text::program_to_text(
                             out.parsed->program, out.parsed->properties,
                             out.parsed->name));
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv);
  if (!options) {
    std::cerr << kUsage;
    return 2;
  }
  if (options->command == "run") return cmd_run(*options);
  if (options->command == "trace") return cmd_trace(*options);
  if (options->command == "verify") {
    return options->batch ? cmd_verify_batch(*options) : cmd_verify(*options);
  }
  if (options->command == "serve") return cmd_serve(*options);
  if (options->command == "check") return cmd_check(*options);
  if (options->command == "enumerate") return cmd_enumerate(*options);
  if (options->command == "diagnose") return cmd_diagnose(*options);
  if (options->command == "smt") return cmd_smt(*options);
  if (options->command == "solve") return cmd_solve(*options);
  if (options->command == "fmt") return cmd_fmt(*options);
  return fail("unknown command '" + options->command + "'");
}
