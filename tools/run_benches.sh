#!/usr/bin/env bash
# Runs every bench binary and records Google-Benchmark JSON as
# BENCH_<name>.json, so the perf trajectory is comparable commit to commit.
#
#   tools/run_benches.sh [build-dir]        # default: build
#
# Knobs:
#   BENCH_OUT_DIR   where the .json files land (default: the build dir)
#   BENCH_MIN_TIME  per-benchmark min time, e.g. 2s for stable numbers
#                   (default 0.05s: quick smoke that still emits real data)
#   BENCH_FILTER    extended regex over bench names; only matching benches
#                   run (e.g. 'state_space|service'). Skipped benches emit
#                   no JSON — downstream bench_gate.py counter gates treat
#                   a bench missing from the run as a skip, not a failure,
#                   so a filtered perf night stays green.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${BENCH_OUT_DIR:-$BUILD_DIR}"
MIN_TIME="${BENCH_MIN_TIME:-0.05s}"
FILTER="${BENCH_FILTER:-}"

benches=(
  bench_encoding
  bench_figure4
  bench_matchgen
  bench_nonblocking
  bench_parallel_dpor
  bench_poll
  bench_service
  bench_solver
  bench_state_space
  bench_symbolic_vs_explicit
)

mkdir -p "$OUT_DIR"
ran=0
for b in "${benches[@]}"; do
  if [[ -n "$FILTER" ]] && ! [[ "$b" =~ $FILTER ]]; then
    echo "== $b (skipped by BENCH_FILTER='$FILTER')"
    continue
  fi
  exe="$BUILD_DIR/$b"
  if [[ ! -x "$exe" ]]; then
    echo "error: $exe not found or not executable (build first: cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
  echo "== $b"
  "$exe" --benchmark_min_time="$MIN_TIME" \
         --benchmark_out="$OUT_DIR/BENCH_${b#bench_}.json" \
         --benchmark_out_format=json
  ran=$((ran + 1))
done

echo "wrote $ran BENCH_*.json files to $OUT_DIR (${#benches[@]} known)"
