// Nightly triage helper: turns MCSYM_FAIL_SEED_FILE artifact lines into
// ready-to-commit tests/corpus/seeds.txt entries.
//
// The nightly deep-fuzz job appends one line per mismatch to the artifact:
//
//   <battery> <seed> <detail...>
//
// where <battery> is "default" or "deadlock" (the DifferentialOptions the
// battery ran with). This tool parses those lines, re-runs each seed
// through differential_iteration with the matching options, and prints a
// corpus entry whose one-line diagnosis is the *reproduced* mismatch (or a
// loud note when the seed no longer reproduces — e.g. after the fix
// landed, which is exactly when the entry should be committed as a
// regression pin):
//
//   deadlock 3362090042840373428   # <first reproduced mismatch detail>
//
// Usage:
//   format_corpus_entry [fail-seeds.txt]     # default: read stdin
//
// Exit status: 0 when every line parsed, 1 on malformed input. Duplicate
// (battery, seed) pairs are collapsed to one entry.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "check/differential.hpp"

namespace {

struct ArtifactLine {
  std::string battery;
  std::uint64_t seed = 0;
  std::string recorded_detail;
};

bool parse_line(const std::string& line, ArtifactLine* out, std::string* err) {
  std::istringstream fields(line);
  if (!(fields >> out->battery)) return false;  // blank: skip silently
  if (out->battery == "#" || out->battery.front() == '#') return false;
  if (out->battery != "default" && out->battery != "deadlock") {
    *err = "unknown battery '" + out->battery + "'";
    return false;
  }
  if (!(fields >> out->seed)) {
    *err = "missing or non-numeric seed";
    return false;
  }
  std::getline(fields, out->recorded_detail);
  const std::size_t start = out->recorded_detail.find_first_not_of(' ');
  out->recorded_detail =
      start == std::string::npos ? "" : out->recorded_detail.substr(start);
  return true;
}

std::string diagnose(const ArtifactLine& line) {
  mcsym::check::DifferentialOptions opts;
  opts.allow_deadlocks = line.battery == "deadlock";
  mcsym::check::DifferentialReport report;
  mcsym::check::differential_iteration(line.seed, opts, report);
  if (!report.mismatches.empty()) return report.mismatches.front().detail;
  if (!line.recorded_detail.empty()) {
    return line.recorded_detail + " [did not reproduce on this build]";
  }
  return "[did not reproduce on this build]";
}

}  // namespace

int main(int argc, char** argv) {
  std::ifstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "format_corpus_entry: cannot open " << argv[1] << "\n";
      return 1;
    }
  }
  std::istream& in = argc > 1 ? file : std::cin;

  std::set<std::pair<std::string, std::uint64_t>> seen;
  std::string line;
  std::size_t lineno = 0;
  bool ok = true;
  bool any = false;
  while (std::getline(in, line)) {
    ++lineno;
    ArtifactLine parsed;
    std::string err;
    if (!parse_line(line, &parsed, &err)) {
      if (!err.empty()) {
        std::cerr << "format_corpus_entry: line " << lineno << ": " << err
                  << "\n";
        ok = false;
      }
      continue;
    }
    if (!seen.emplace(parsed.battery, parsed.seed).second) continue;
    any = true;
    std::cout << parsed.battery << " " << parsed.seed << "   # "
              << diagnose(parsed) << "\n";
  }
  if (!any) std::cerr << "format_corpus_entry: no artifact lines found\n";
  return ok ? 0 : 1;
}
