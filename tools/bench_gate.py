#!/usr/bin/env python3
"""Bench regression gate: compare two Google-Benchmark JSON files.

Usage:
    bench_gate.py OLD.json NEW.json [--benchmark NAME ...] [--max-ratio R]

Fails (exit 1) when any named benchmark's cpu_time in NEW exceeds
max-ratio x its cpu_time in OLD. Benchmarks named but missing from OLD are
reported and skipped (first run after a rename must not trip the gate);
benchmarks missing from NEW are a hard failure (the series silently
disappeared). Default benchmark: BM_Dpor_MessageRace/4, the headline
instance of the checkpoint/undo execution core.

The nightly workflow feeds this with the previous run's bench-json
artifact, turning the accumulating perf trajectory into an alarm instead
of a write-only archive.
"""

import argparse
import json
import sys


def load_times(path):
    """benchmark name -> cpu_time (ns), aggregates excluded."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = float(bench["cpu_time"])
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old_json")
    parser.add_argument("new_json")
    parser.add_argument(
        "--benchmark",
        action="append",
        default=None,
        help="benchmark name to gate (repeatable; default BM_Dpor_MessageRace/4)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when new cpu_time > max-ratio * old cpu_time (default 2.0)",
    )
    args = parser.parse_args()
    benchmarks = args.benchmark or ["BM_Dpor_MessageRace/4"]

    old_times = load_times(args.old_json)
    new_times = load_times(args.new_json)

    failed = False
    for name in benchmarks:
        if name not in new_times:
            print(f"FAIL {name}: missing from {args.new_json}")
            failed = True
            continue
        if name not in old_times:
            print(f"skip {name}: no baseline in {args.old_json}")
            continue
        old, new = old_times[name], new_times[name]
        ratio = new / old if old > 0 else float("inf")
        verdict = "FAIL" if ratio > args.max_ratio else "ok"
        print(
            f"{verdict} {name}: {old:.0f}ns -> {new:.0f}ns "
            f"({ratio:.2f}x, limit {args.max_ratio:.2f}x)"
        )
        failed |= ratio > args.max_ratio
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
