#!/usr/bin/env python3
"""Bench regression gate: compare two Google-Benchmark JSON files.

Usage:
    bench_gate.py OLD.json NEW.json [--benchmark NAME ...] [--max-ratio R]
                  [--speedup FAST:BASE:MIN ...]
                  [--min-counter BENCH:COUNTER:MIN ...]

Fails (exit 1) when any named benchmark's time in NEW exceeds max-ratio x
its time in OLD. Benchmarks named but missing from OLD are reported and
skipped (first run after a rename must not trip the gate); benchmarks
missing from NEW are a hard failure (the series silently disappeared).
Default benchmark: BM_Dpor_MessageRace/4, the headline instance of the
checkpoint/undo execution core.

Times are cpu_time, except for benchmarks registered with UseRealTime
(their JSON names end in "/real_time"): those gate on real_time, the only
meaningful metric for a multi-threaded run whose cpu_time sums the whole
worker fleet.

--speedup FAST:BASE:MIN (repeatable) is an intra-run ratio gate on
NEW.json alone: fail unless time(BASE) / time(FAST) >= MIN. The nightly
uses it to pin the parallel DPOR scaling floor, e.g.
BM_Dpor_Parallel_MessageRace/4/4/real_time (4 workers) against .../4/1/
real_time (serial) at 2.5x. Either side missing from NEW is a hard
failure.

--min-counter BENCH:COUNTER:MIN (repeatable) gates a user counter of one
benchmark in NEW.json: fail unless counters[COUNTER] >= MIN. The nightly
uses it as the nonzero-steals sanity check — the wide scatter/gather
workload at 8 workers must report steals >= 1, proving the work-stealing
scheduler actually moved work between deques rather than scaling by luck
of the initial split — and as the state_hits floor on the stateful
exploration bench. A benchmark missing from NEW.json entirely is a skip
with a ::notice (run_benches.sh BENCH_FILTER legitimately leaves whole
bench binaries out of a run; an unfiltered night still catches a renamed
series because the counter gate then guards nothing and the
compared-nothing warning fires). A benchmark that IS present but lacks
the named counter is a hard failure — the series ran and silently lost
its telemetry.

The nightly workflow feeds this with the previous run's bench-json
artifact, turning the accumulating perf trajectory into an alarm instead
of a write-only archive.
"""

import argparse
import json
import os
import sys


def annotate(level, message):
    """Surface a skip/warning in the GitHub Actions UI, not just the log.

    Outside Actions (no GITHUB_ACTIONS env) the plain message is printed,
    so local runs read the same information without the :: markup.
    """
    if os.environ.get("GITHUB_ACTIONS"):
        print(f"::{level}::{message}")
    else:
        print(f"{level}: {message}")


def load_entries(path):
    """benchmark name -> raw JSON entry, aggregates excluded.

    User counters appear as top-level numeric keys of the entry, next to
    real_time/cpu_time — the counter gate reads them straight off it.
    """
    with open(path) as f:
        data = json.load(f)
    return {
        bench["name"]: bench
        for bench in data.get("benchmarks", [])
        if bench.get("run_type") != "aggregate"
    }


def load_times(path):
    """benchmark name -> gated time (ns), aggregates excluded.

    UseRealTime benchmarks (name suffix "/real_time") gate on real_time;
    everything else on cpu_time.
    """
    times = {}
    for name, bench in load_entries(path).items():
        field = "real_time" if name.endswith("/real_time") else "cpu_time"
        times[name] = float(bench[field])
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old_json")
    parser.add_argument("new_json")
    parser.add_argument(
        "--benchmark",
        action="append",
        default=None,
        help="benchmark name to gate (repeatable; default BM_Dpor_MessageRace/4)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when new time > max-ratio * old time (default 2.0)",
    )
    parser.add_argument(
        "--speedup",
        action="append",
        default=[],
        metavar="FAST:BASE:MIN",
        help="intra-run ratio gate on NEW.json: fail unless "
        "time(BASE)/time(FAST) >= MIN (repeatable)",
    )
    parser.add_argument(
        "--min-counter",
        action="append",
        default=[],
        metavar="BENCH:COUNTER:MIN",
        help="counter floor gate on NEW.json: fail unless the named "
        "benchmark's user counter is >= MIN (repeatable)",
    )
    args = parser.parse_args()
    # Ratio/counter-only invocations (intra-NEW gates) skip the default
    # old-vs-new benchmark; naming none with neither gate keeps the
    # historical default.
    if args.benchmark is not None:
        benchmarks = args.benchmark
    elif args.speedup or args.min_counter:
        benchmarks = []
    else:
        benchmarks = ["BM_Dpor_MessageRace/4"]

    old_times = load_times(args.old_json)
    new_times = load_times(args.new_json)

    failed = False
    compared = 0
    skipped = []
    for name in benchmarks:
        if name not in new_times:
            print(f"FAIL {name}: missing from {args.new_json}")
            failed = True
            continue
        if name not in old_times:
            # A skip means this series was NOT gated tonight. Say so where
            # a reviewer will see it, instead of scrolling past a log line.
            annotate(
                "notice",
                f"bench gate skipped {name}: no baseline in {args.old_json} "
                "(expected on the first run after adding or renaming it)",
            )
            skipped.append(name)
            continue
        old, new = old_times[name], new_times[name]
        ratio = new / old if old > 0 else float("inf")
        verdict = "FAIL" if ratio > args.max_ratio else "ok"
        print(
            f"{verdict} {name}: {old:.0f}ns -> {new:.0f}ns "
            f"({ratio:.2f}x, limit {args.max_ratio:.2f}x)"
        )
        failed |= ratio > args.max_ratio
        compared += 1

    for spec in args.speedup:
        parts = spec.rsplit(":", 2)
        if len(parts) != 3:
            print(f"FAIL --speedup '{spec}': expected FAST:BASE:MIN")
            failed = True
            continue
        fast, base, min_s = parts[0], parts[1], float(parts[2])
        missing = [n for n in (fast, base) if n not in new_times]
        if missing:
            print(f"FAIL speedup {fast}: missing from {args.new_json}: "
                  f"{', '.join(missing)}")
            failed = True
            continue
        speedup = new_times[base] / new_times[fast] if new_times[fast] > 0 \
            else float("inf")
        verdict = "FAIL" if speedup < min_s else "ok"
        print(
            f"{verdict} speedup {fast} vs {base}: {speedup:.2f}x "
            f"(floor {min_s:.2f}x)"
        )
        failed |= speedup < min_s

    new_entries = load_entries(args.new_json) if args.min_counter else {}
    for spec in args.min_counter:
        parts = spec.rsplit(":", 2)
        if len(parts) != 3:
            print(f"FAIL --min-counter '{spec}': expected BENCH:COUNTER:MIN")
            failed = True
            continue
        bench, counter, floor = parts[0], parts[1], float(parts[2])
        entry = new_entries.get(bench)
        if entry is None:
            # The whole series is absent from the run — a BENCH_FILTERed
            # night, or the first night before the bench existed. Not gated
            # tonight; say so visibly instead of failing a filtered run.
            annotate(
                "notice",
                f"counter gate skipped {bench}: missing from "
                f"{args.new_json} (bench not part of this run, e.g. "
                "BENCH_FILTER)",
            )
            skipped.append(bench)
            continue
        value = entry.get(counter)
        if not isinstance(value, (int, float)):
            print(f"FAIL counter {bench}: no counter '{counter}'")
            failed = True
            continue
        verdict = "FAIL" if value < floor else "ok"
        print(
            f"{verdict} counter {bench} {counter}={value:.0f} "
            f"(floor {floor:.0f})"
        )
        failed |= value < floor

    print(
        f"summary: {compared} compared, {len(skipped)} skipped, "
        f"{len(args.speedup)} speedup gate(s), "
        f"{len(args.min_counter)} counter gate(s)"
    )
    if benchmarks and compared == 0 and not failed:
        # Every named series was skipped: the gate ran but guarded nothing.
        # Escalate to a warning so a missing/corrupt baseline artifact
        # cannot masquerade as a green perf night.
        annotate(
            "warning",
            f"bench gate compared nothing: all {len(skipped)} named "
            f"benchmark(s) had no baseline in {args.old_json}",
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
